// Package apk implements the synthetic application package format (.sapk)
// and the in-memory App bundle assembled from it. A .sapk plays the role of
// an APK after apktool decompilation: it contains AndroidManifest.xml, layout
// XML files under res/layout/, and smali class files under smali/. Packages
// may be "packed" (packer-protected), in which case static extraction fails,
// like the encrypted apps the paper had to rule out of its dataset.
package apk

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// magic is the archive header line.
const magic = "SAPK1"

// packedMarker is the entry path whose presence marks a packer-protected app.
const packedMarker = "META-INF/PACKED"

// MaxEntrySize bounds a single archive entry (64 MiB). Without it a hostile
// length header could make the reader allocate arbitrary memory before any
// byte of the body is read.
const MaxEntrySize = 64 << 20

// Archive is an ordered set of named byte entries, the on-disk form of a
// synthetic package.
type Archive struct {
	entries map[string][]byte
	order   []string
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{entries: make(map[string][]byte)}
}

// Put stores an entry, replacing any previous contents for the path.
func (a *Archive) Put(path string, data []byte) error {
	if err := validPath(path); err != nil {
		return err
	}
	if _, exists := a.entries[path]; !exists {
		a.order = append(a.order, path)
	}
	a.entries[path] = append([]byte(nil), data...)
	return nil
}

// Get returns an entry's contents. The boolean result reports presence.
func (a *Archive) Get(path string) ([]byte, bool) {
	d, ok := a.entries[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Has reports whether the path exists.
func (a *Archive) Has(path string) bool {
	_, ok := a.entries[path]
	return ok
}

// Paths returns all entry paths, sorted.
func (a *Archive) Paths() []string {
	out := append([]string(nil), a.order...)
	sort.Strings(out)
	return out
}

// Len reports the number of entries.
func (a *Archive) Len() int { return len(a.entries) }

// WithPrefix returns the sorted paths under the given prefix.
func (a *Archive) WithPrefix(prefix string) []string {
	var out []string
	for _, p := range a.Paths() {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	return out
}

func validPath(path string) error {
	switch {
	case path == "":
		return fmt.Errorf("apk: empty entry path")
	case strings.HasPrefix(path, "/"):
		return fmt.Errorf("apk: absolute entry path %q", path)
	case strings.Contains(path, ".."):
		return fmt.Errorf("apk: entry path %q contains '..'", path)
	case strings.ContainsAny(path, "\n\r"):
		return fmt.Errorf("apk: entry path %q contains newline", path)
	}
	return nil
}

// WriteTo serializes the archive: a magic line, then for each entry (in
// sorted path order) a path line, a decimal length line, the raw bytes, and a
// terminating newline.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintln(bw, magic)); err != nil {
		return n, err
	}
	for _, path := range a.Paths() {
		data := a.entries[path]
		if err := count(fmt.Fprintf(bw, "%s\n%d\n", path, len(data))); err != nil {
			return n, err
		}
		if err := count(bw.Write(data)); err != nil {
			return n, err
		}
		if err := count(bw.WriteString("\n")); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// bufPool recycles serialization buffers across Bytes calls; the corpus
// builders serialize hundreds of archives per study run.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// Bytes serializes the archive to memory.
func (a *Archive) Bytes() []byte {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Writing to a bytes.Buffer cannot fail.
	_, _ = a.WriteTo(buf)
	out := append([]byte(nil), buf.Bytes()...)
	bufPool.Put(buf)
	return out
}

// ReadArchive parses a serialized archive.
func ReadArchive(r io.Reader) (*Archive, error) {
	br := bufio.NewReader(r)
	head, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("apk: read header: %w", err)
	}
	if strings.TrimRight(head, "\n") != magic {
		return nil, fmt.Errorf("apk: bad magic %q", strings.TrimSpace(head))
	}
	a := NewArchive()
	for {
		pathLine, err := br.ReadString('\n')
		if err == io.EOF && pathLine == "" {
			return a, nil
		}
		if err != nil {
			return nil, fmt.Errorf("apk: read entry path: %w", err)
		}
		path := strings.TrimRight(pathLine, "\n")
		lenLine, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("apk: read entry length for %q: %w", path, err)
		}
		size, err := strconv.Atoi(strings.TrimRight(lenLine, "\n"))
		if err != nil || size < 0 {
			return nil, fmt.Errorf("apk: bad entry length %q for %q", strings.TrimSpace(lenLine), path)
		}
		if size > MaxEntrySize {
			return nil, fmt.Errorf("apk: entry %q claims %d bytes, limit is %d", path, size, MaxEntrySize)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("apk: read %d bytes of %q: %w", size, path, err)
		}
		nl, err := br.ReadByte()
		if err != nil || nl != '\n' {
			return nil, fmt.Errorf("apk: entry %q not newline-terminated", path)
		}
		if a.Has(path) {
			return nil, fmt.Errorf("apk: duplicate entry %q", path)
		}
		if err := a.Put(path, data); err != nil {
			return nil, err
		}
	}
}

// ParseArchive parses a serialized archive from memory.
func ParseArchive(data []byte) (*Archive, error) {
	return ReadArchive(bytes.NewReader(data))
}

// MarkPacked flags the archive as packer-protected.
func (a *Archive) MarkPacked() {
	_ = a.Put(packedMarker, []byte("packed"))
}

// Packed reports whether the archive is packer-protected.
func (a *Archive) Packed() bool {
	return a.Has(packedMarker)
}
