package lint_test

import (
	"errors"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/layout"
	"fragdroid/internal/lint"
	"fragdroid/internal/manifest"
	"fragdroid/internal/smali"
	"fragdroid/internal/statics"
)

func ins(op smali.Op, args ...string) smali.Instr {
	return smali.Instr{Op: op, Args: args}
}

func method(name string, body ...smali.Instr) *smali.Method {
	return &smali.Method{Name: name, Access: []string{"public"}, Body: body}
}

func mustLayout(t *testing.T, b *layout.B, name string) *layout.Layout {
	t.Helper()
	l, err := b.BuildLayout(name)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// lintApp assembles the app, extracts and runs every analyzer.
func lintApp(t *testing.T, man *manifest.Manifest, layouts []*layout.Layout, classes []*smali.Class) []lint.Diagnostic {
	t.Helper()
	app, err := apk.Assemble(man, layouts, classes)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	ex, err := statics.Extract(app)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return lint.Run(ex)
}

// byCode returns the diagnostics carrying the analyzer code.
func byCode(ds []lint.Diagnostic, code string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range ds {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func mustBuild(t *testing.T, b *manifest.Builder) *manifest.Manifest {
	t.Helper()
	man, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []lint.Severity{lint.SeverityInfo, lint.SeverityWarning, lint.SeverityError} {
		got, err := lint.ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := lint.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted unknown name")
	}
	if lint.MaxSeverity(nil) != 0 {
		t.Error("MaxSeverity(nil) != 0")
	}
	ds := []lint.Diagnostic{{Severity: lint.SeverityWarning}, {Severity: lint.SeverityError}}
	if lint.MaxSeverity(ds) != lint.SeverityError {
		t.Error("MaxSeverity missed the error")
	}
	if got := lint.Filter(ds, lint.SeverityError); len(got) != 1 {
		t.Errorf("Filter kept %d diagnostics, want 1", len(got))
	}
}

// FL001 (activities): B and C transition into each other but nothing on the
// launcher path ever starts them — only forced empty-Intent starts visit them.
func TestFL001UnreachableActivity(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").Activity("com.ex.B").Activity("com.ex.C"))
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "idle")),
		}},
		{Name: "com.ex.B", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpNewIntent, "com.ex.B", "com.ex.C"),
				ins(smali.OpStartActivity)),
		}},
		{Name: "com.ex.C", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "c")),
		}},
	}
	got := byCode(lintApp(t, man, nil, classes), "FL001")
	classesSeen := map[string]bool{}
	for _, d := range got {
		if d.Severity != lint.SeverityWarning {
			t.Errorf("FL001 severity = %s, want warning", d.Severity)
		}
		classesSeen[d.Class] = true
	}
	if !classesSeen["com.ex.B"] || !classesSeen["com.ex.C"] {
		t.Errorf("FL001 classes = %v, want com.ex.B and com.ex.C", classesSeen)
	}
}

// FL001 (fragments): LostFrag is transaction-committed only inside a dead
// method of a container-less activity, so it is effective but outside the
// forced-start ceiling.
func TestFL001UnreachableFragment(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").Activity("com.ex.B"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
			Child(layout.Root(layout.TypeFrameLayout).ID("@id/c")),
			"activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/lost_root"), "fragment_lost"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.B"),
				ins(smali.OpStartActivity)),
		}},
		{Name: "com.ex.B", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "b")),
			method("deadSwitch",
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, "@id/c", "com.ex.LostFrag"),
				ins(smali.OpTxnCommit)),
		}},
		{Name: "com.ex.LostFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_lost")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL001")
	found := false
	for _, d := range got {
		if d.Class == "com.ex.LostFrag" {
			found = true
		}
	}
	if !found {
		t.Errorf("FL001 did not flag com.ex.LostFrag; got %v", got)
	}
}

// FL002: begin-transaction without commit, in both the fall-off-the-end and
// the double-begin form.
func TestFL002UncommittedTransaction(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
			Child(layout.Root(layout.TypeFrameLayout).ID("@id/c")),
			"activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/home_root"), "fragment_home"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, "@id/c", "com.ex.HomeFrag")),
			method("onStart",
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnCommit)),
		}},
		{Name: "com.ex.HomeFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_home")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL002")
	if len(got) != 2 {
		t.Fatalf("FL002 fired %d times, want 2 (fall-off-end and double-begin): %v", len(got), got)
	}
	for _, d := range got {
		if d.Severity != lint.SeverityError {
			t.Errorf("FL002 severity = %s, want error", d.Severity)
		}
	}
}

// FL003: transaction operations with no open transaction.
func TestFL003OperationOutsideTransaction(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
			Child(layout.Root(layout.TypeFrameLayout).ID("@id/c")),
			"activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/home_root"), "fragment_home"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpGetFragmentManager),
				ins(smali.OpTxnAdd, "@id/c", "com.ex.HomeFrag"),
				ins(smali.OpTxnCommit)),
		}},
		{Name: "com.ex.HomeFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_home")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL003")
	if len(got) != 2 {
		t.Fatalf("FL003 fired %d times, want 2 (txn-add and txn-commit): %v", len(got), got)
	}
}

// FL004: a registered listener handler the component cannot resolve, and an
// XML onClick bound to a method the inflating activity does not define.
func TestFL004MissingClickHandler(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
			Child(layout.Root(layout.TypeButton).ID("@id/ok").Text("ok")).
			Child(layout.Root(layout.TypeButton).ID("@id/ghostly").Text("x").OnClick("ghost")),
			"activity_main"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpSetClickListener, "@id/ok", "onMissing")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL004")
	if len(got) != 2 {
		t.Fatalf("FL004 fired %d times, want 2 (listener and XML onClick): %v", len(got), got)
	}
	for _, d := range got {
		if d.Severity != lint.SeverityError {
			t.Errorf("FL004 severity = %s, want error", d.Severity)
		}
	}
}

// FL005: the listener targets a widget that only exists in another
// activity's layout — resolvable app-wide, but the owner never shows it.
func TestFL005ListenerOnForeignWidget(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").Activity("com.ex.Second"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root"), "activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/second_root").
			Child(layout.Root(layout.TypeButton).ID("@id/other").Text("other")),
			"activity_second"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpSetClickListener, "@id/other", "onTap"),
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Second"),
				ins(smali.OpStartActivity)),
			method("onTap", ins(smali.OpLog, "tap")),
		}},
		{Name: "com.ex.Second", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpSetContentView, "@layout/activity_second")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL005")
	if len(got) != 1 || got[0].Class != "com.ex.Main" || got[0].Severity != lint.SeverityWarning {
		t.Fatalf("FL005 = %v, want one warning on com.ex.Main", got)
	}
}

// FL006: explicit intent to a class the manifest never declares.
func TestFL006UndeclaredIntentTarget(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Ghost"),
				ins(smali.OpStartActivity)),
		}},
		{Name: "com.ex.Ghost", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "ghost")),
		}},
	}
	got := byCode(lintApp(t, man, nil, classes), "FL006")
	if len(got) != 1 || got[0].Method != "onCreate" || got[0].Severity != lint.SeverityError {
		t.Fatalf("FL006 = %v, want one error in com.ex.Main.onCreate", got)
	}
}

// FL007: the transaction container lives in another activity's layout.
func TestFL007ForeignContainer(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").Activity("com.ex.Second"))
	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root"), "activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/second_root").
			Child(layout.Root(layout.TypeFrameLayout).ID("@id/far_container")),
			"activity_second"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/home_root"), "fragment_home"),
	}
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, "@id/far_container", "com.ex.HomeFrag"),
				ins(smali.OpTxnCommit),
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Second"),
				ins(smali.OpStartActivity)),
		}},
		{Name: "com.ex.Second", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpSetContentView, "@layout/activity_second")),
		}},
		{Name: "com.ex.HomeFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_home")),
		}},
	}
	got := byCode(lintApp(t, man, layouts, classes), "FL007")
	if len(got) != 1 || got[0].Class != "com.ex.Main" || got[0].Severity != lint.SeverityError {
		t.Fatalf("FL007 = %v, want one error on com.ex.Main", got)
	}
}

// FL008: Req require-extra's "token"; one caller supplies it, the other
// never put-extra's before starting, and a second activity with an
// unsupplied key is flagged.
func TestFL008UnsuppliedRequireExtra(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").Activity("com.ex.Req").Activity("com.ex.Ok"))
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Req"),
				ins(smali.OpStartActivity),
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Ok"),
				ins(smali.OpPutExtra, "user", "alice"),
				ins(smali.OpStartActivity)),
		}},
		{Name: "com.ex.Req", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpRequireExtra, "token")),
		}},
		{Name: "com.ex.Ok", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpRequireExtra, "user")),
		}},
	}
	got := byCode(lintApp(t, man, nil, classes), "FL008")
	if len(got) != 1 || got[0].Class != "com.ex.Req" || got[0].Severity != lint.SeverityError {
		t.Fatalf("FL008 = %v, want exactly one error on com.ex.Req", got)
	}
}

// FL009: a sensitive call inside a method nothing ever invokes.
func TestFL009UnreachableSensitive(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "up")),
			method("helper", ins(smali.OpInvokeSensitive, "contacts/query")),
		}},
	}
	got := byCode(lintApp(t, man, nil, classes), "FL009")
	if len(got) != 1 || got[0].Method != "helper" || got[0].Severity != lint.SeverityWarning {
		t.Fatalf("FL009 = %v, want one warning on com.ex.Main.helper", got)
	}
}

// FL010: a reachable location API without ACCESS_FINE_LOCATION in the
// manifest; declaring the permission silences it.
func TestFL010MissingPermission(t *testing.T) {
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpInvokeSensitive, "location/getProviders")),
		}},
	}
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	got := byCode(lintApp(t, man, nil, classes), "FL010")
	if len(got) != 1 || got[0].Severity != lint.SeverityError {
		t.Fatalf("FL010 = %v, want one error", got)
	}

	declared := mustBuild(t, manifest.NewBuilder("com.ex").
		Permission("android.permission.ACCESS_FINE_LOCATION").Launcher("com.ex.Main"))
	if got := byCode(lintApp(t, declared, nil, classes), "FL010"); len(got) != 0 {
		t.Fatalf("FL010 fired despite the declared permission: %v", got)
	}
}

// FL011 + FL012: an action no activity filter matches, and a broadcast no
// receiver subscribes to. System (android.*) actions stay quiet.
func TestFL011FL012UnresolvedActionAndBroadcast(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.ex").Launcher("com.ex.Main"))
	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpNewIntentAction, "com.ex.UNHANDLED"),
				ins(smali.OpStartActivity),
				ins(smali.OpNewIntentAction, "android.intent.action.VIEW"),
				ins(smali.OpStartActivity),
				ins(smali.OpSendBroadcast, "com.ex.PING"),
				ins(smali.OpSendBroadcast, "android.net.conn.CONNECTIVITY_CHANGE")),
		}},
	}
	ds := lintApp(t, man, nil, classes)
	if got := byCode(ds, "FL011"); len(got) != 1 || got[0].Severity != lint.SeverityWarning {
		t.Fatalf("FL011 = %v, want one warning (android.* exempt)", got)
	}
	if got := byCode(ds, "FL012"); len(got) != 1 || got[0].Severity != lint.SeverityWarning {
		t.Fatalf("FL012 = %v, want one warning (android.* exempt)", got)
	}
}

// TestRunIsDeterministic pins the sort: two runs over the same extraction
// yield identical output.
func TestRunIsDeterministic(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := statics.Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	a, b := lint.Run(ex), lint.Run(ex)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestStudyCorpusCleanAtError is the corpus-wide gate: every analyzable app
// of the 217-app study corpus lints clean at severity error.
func TestStudyCorpusCleanAtError(t *testing.T) {
	cache := artifact.NewCache()
	analyzed := 0
	for _, spec := range corpus.StudySpecs(1) {
		ex, err := cache.Extraction(spec)
		if errors.Is(err, apk.ErrPacked) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", spec.Package, err)
		}
		analyzed++
		if bad := lint.Filter(lint.Run(ex), lint.SeverityError); len(bad) > 0 {
			t.Errorf("%s: %d error diagnostics, first: %s", spec.Package, len(bad), bad[0])
		}
	}
	if want := corpus.StudySize - 10; analyzed != want {
		t.Errorf("analyzed %d apps, want %d", analyzed, want)
	}
}

// FuzzLint: whatever assembles must extract and lint without panicking.
func FuzzLint(f *testing.F) {
	f.Add(
		".class public Lcom/fz/Main;\n.super Landroid/app/Activity;\n.method public onCreate()V\n    log \"up\"\n.end method\n",
		".class public Lcom/fz/B;\n.super Landroid/app/Activity;\n.method public onCreate()V\n    new-intent com.fz.B -> com.fz.Main\n    start-activity\n.end method\n",
	)
	f.Add(
		".class public Lcom/fz/Main;\n.super Landroid/app/Activity;\n.method public onCreate()V\n    get-fragment-manager\n    begin-transaction\n.end method\n",
		".class public Lcom/fz/F;\n.super Landroid/app/Fragment;\n.method public onCreateView()V\n    log \"f\"\n.end method\n",
	)
	f.Add(
		".class public Lcom/fz/Main;\n.super Landroid/app/Activity;\n.method public onCreate()V\n    invoke-sensitive location/getProviders\n    send-broadcast com.fz.PING\n.end method\n",
		".class public Lcom/fz/B;\n.super Landroid/app/Activity;\n.method public helper()V\n    require-extra \"k\"\n.end method\n",
	)
	f.Add(".class Lp/A;\n", "garbage")
	f.Fuzz(func(t *testing.T, src1, src2 string) {
		c1, err := smali.ParseClass("f1.smali", []byte(src1))
		if err != nil {
			return
		}
		c2, err := smali.ParseClass("f2.smali", []byte(src2))
		if err != nil {
			return
		}
		mb := manifest.NewBuilder("com.fz").Launcher(c1.Name)
		if c2.Name != c1.Name {
			mb.Activity(c2.Name)
		}
		man, err := mb.Build()
		if err != nil {
			return
		}
		app, err := apk.Assemble(man, nil, []*smali.Class{c1, c2})
		if err != nil {
			return
		}
		ex, err := statics.Extract(app)
		if err != nil {
			return
		}
		ds := lint.Run(ex)
		for _, d := range ds {
			if d.Code == "" || d.Severity < lint.SeverityInfo || d.Severity > lint.SeverityError {
				t.Fatalf("malformed diagnostic: %+v", d)
			}
			_ = d.String()
		}
	})
}

// FL013: two seeded gap defects. Iso's sensitive call sits in an activity no
// launcher path reaches (forced starts only); Main$1's sits behind an
// inner-class dispatch with no bound widget, so the launcher path exists but
// cannot be actuated — the diagnostic names the blocking edge.
func TestFL013LauncherBlockedSensitive(t *testing.T) {
	man := mustBuild(t, manifest.NewBuilder("com.l13").
		Launcher("com.l13.Main").
		Activity("com.l13.Iso"))
	classes := []*smali.Class{
		{Name: "com.l13.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate", ins(smali.OpLog, "up")),
		}},
		{Name: "com.l13.Main$1", Super: smali.ClassObject, Access: []string{"public"}, Methods: []*smali.Method{
			method("run", ins(smali.OpInvokeSensitive, "phone/getDeviceId")),
		}},
		// Iso transitions INTO Main (so it is effective, not isolated) but
		// nothing on the launcher side ever starts it.
		{Name: "com.l13.Iso", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpInvokeSensitive, "location/getProviders"),
				ins(smali.OpNewIntent, "com.l13.Iso", "com.l13.Main"),
				ins(smali.OpStartActivity)),
		}},
	}
	got := byCode(lintApp(t, man, nil, classes), "FL013")
	if len(got) != 2 {
		t.Fatalf("FL013 findings = %d, want 2: %v", len(got), got)
	}
	var sawIso, sawInner bool
	for _, d := range got {
		if d.Severity != lint.SeverityWarning {
			t.Errorf("severity = %s, want warning", d.Severity)
		}
		switch d.Class {
		case "com.l13.Iso":
			sawIso = true
			if !strings.Contains(d.Msg, "location/getProviders") {
				t.Errorf("Iso finding does not name the API: %s", d.Msg)
			}
		case "com.l13.Main$1":
			sawInner = true
			if !strings.Contains(d.Msg, "inner") || !strings.Contains(d.Msg, "com.l13.Main$1") {
				t.Errorf("inner finding does not name the blocking edge: %s", d.Msg)
			}
		default:
			t.Errorf("unexpected FL013 position %s: %s", d.Class, d.Msg)
		}
	}
	if !sawIso || !sawInner {
		t.Errorf("missing expected findings (iso=%v inner=%v): %v", sawIso, sawInner, got)
	}

	// A launcher-clickable site stays clean: the same API behind a bound
	// listener produces no FL013.
	cleanMan := mustBuild(t, manifest.NewBuilder("com.l13b").Launcher("com.l13b.Main"))
	cleanLayouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/root").
			Child(layout.Root(layout.TypeButton).ID("@id/btn_go").Text("go")),
			"activity_main"),
	}
	cleanClasses := []*smali.Class{
		{Name: "com.l13b.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpSetClickListener, "@id/btn_go", "onGo")),
			method("onGo", ins(smali.OpInvokeSensitive, "phone/getDeviceId")),
		}},
	}
	if got := byCode(lintApp(t, cleanMan, cleanLayouts, cleanClasses), "FL013"); len(got) != 0 {
		t.Errorf("clean app produced FL013: %v", got)
	}
}
