// Package lint is a diagnostics engine over FragDroid's static facts: the
// parsed application bundle, the extraction artifacts (Algorithms 1–3) and
// the whole-program call graph. Each analyzer checks one class of defect the
// dynamic phase would otherwise discover the hard way — or never discover at
// all — and emits positioned, machine-readable diagnostics.
//
// The analyzers:
//
//	FL001  effective component statically unreachable
//	FL002  begin-transaction never committed
//	FL003  transaction operation outside a transaction
//	FL004  click handler method does not exist (guaranteed NoSuchMethodException)
//	FL005  set-click-listener on a widget absent from the owner's layouts
//	FL006  explicit intent target not declared in the manifest
//	FL007  transaction container id missing from the host's content view
//	FL008  require-extra key no caller ever put-extra's (guaranteed force close)
//	FL009  statically unreachable invoke-sensitive (dead monitoring site)
//	FL010  statically reachable sensitive API without its manifest permission
//	FL011  intent action that resolves to no declared activity
//	FL012  send-broadcast no declared receiver subscribes to
//	FL013  sensitive API no launcher-rooted UI path can actuate
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/paths"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/smali"
	"fragdroid/internal/statics"
)

// Severity grades a diagnostic.
type Severity int

// Severities, ordered.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// ParseSeverity parses "info", "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return SeverityInfo, nil
	case "warning":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning or error)", s)
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// App is the application package.
	App string `json:"app"`
	// Class and Method locate the finding in code; component-level findings
	// leave Method empty.
	Class  string `json:"class,omitempty"`
	Method string `json:"method,omitempty"`
	// Line is the smali source line (0 for structural findings).
	Line int `json:"line,omitempty"`
	// Code is the analyzer code (FL001..FL013).
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"msg"`
}

func (d Diagnostic) String() string {
	pos := d.Class
	if d.Method != "" {
		pos += "." + d.Method
	}
	if d.Line > 0 {
		pos += fmt.Sprintf(":%d", d.Line)
	}
	if pos == "" {
		pos = d.App
	}
	return fmt.Sprintf("%s: %s %s: %s", pos, d.Severity, d.Code, d.Msg)
}

// MaxSeverity returns the highest severity among the diagnostics (0 if none).
func MaxSeverity(ds []Diagnostic) Severity {
	var max Severity
	for _, d := range ds {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// Filter returns the diagnostics at or above the minimum severity.
func Filter(ds []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// Run executes every analyzer over one extraction and returns the findings
// sorted by class, line and code.
func Run(ex *statics.Extraction) []Diagnostic {
	c := newCtx(ex)
	c.unreachableComponents()
	c.transactions()
	c.clickHandlers()
	c.intentTargets()
	c.containers()
	c.requireExtras()
	c.unreachableSensitive()
	c.permissions()
	c.actionsAndBroadcasts()
	c.launcherBlockedSensitive()

	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	return c.diags
}

// ctx carries the shared facts the analyzers consult.
type ctx struct {
	ex    *statics.Extraction
	app   *apk.App
	prog  *smali.Program
	pkg   string
	diags []Diagnostic

	// layoutsOf maps every class (not only effective components) to the
	// layouts it inflates, including through inner classes.
	layoutsOf map[string][]string
	// fragSet marks fragment subclasses; actSet marks declared activities.
	fragSet map[string]bool
	actSet  map[string]bool
}

func newCtx(ex *statics.Extraction) *ctx {
	c := &ctx{
		ex:        ex,
		app:       ex.App,
		prog:      ex.App.Program,
		pkg:       ex.App.Manifest.Package,
		layoutsOf: make(map[string][]string),
		fragSet:   make(map[string]bool),
		actSet:    make(map[string]bool),
	}
	for _, f := range c.prog.FragmentClasses() {
		c.fragSet[f] = true
	}
	for _, a := range c.app.Manifest.ActivityNames() {
		c.actSet[a] = true
	}
	for _, cn := range c.prog.Names() {
		owner := outerComponent(cn)
		cl := c.prog.Class(cn)
		for _, m := range cl.Methods {
			for _, ins := range m.Body {
				if ins.Op != smali.OpSetContentView {
					continue
				}
				if name, ok := layoutRefName(ins.Args[0]); ok {
					c.layoutsOf[owner] = appendUnique(c.layoutsOf[owner], name)
				}
			}
		}
	}
	return c
}

func (c *ctx) report(class, method string, line int, code string, sev Severity, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		App: c.pkg, Class: class, Method: method, Line: line,
		Code: code, Severity: sev, Msg: fmt.Sprintf(format, args...),
	})
}

// eachMethod visits every method of every class in program order.
func (c *ctx) eachMethod(fn func(class string, m *smali.Method)) {
	for _, cn := range c.prog.Names() {
		for _, m := range c.prog.Class(cn).Methods {
			fn(cn, m)
		}
	}
}

// outerComponent maps an inner class to its outer class, everything else to
// itself — the component whose context the code executes in.
func outerComponent(class string) string {
	if i := strings.IndexByte(class, '$'); i > 0 {
		return class[:i]
	}
	return class
}

// resolves reports whether class (or its application superclass chain)
// defines method — the runtime's virtual dispatch.
func (c *ctx) resolves(class, method string) bool {
	for _, cn := range append([]string{class}, c.prog.SuperChain(class)...) {
		if cl := c.prog.Class(cn); cl != nil && cl.Method(method) != nil {
			return true
		}
	}
	return false
}

// ownLayouts returns the layouts a class inflates; hostsLayouts adds, for a
// fragment, the layouts of its host activities (its widgets are composed
// into the host's window at runtime) and, for an activity, the layouts of
// its dependent fragments.
func (c *ctx) reachableLayouts(class string) []string {
	out := append([]string(nil), c.layoutsOf[class]...)
	if c.fragSet[class] {
		for _, host := range c.ex.Deps.HostsOf[class] {
			out = append(out, c.layoutsOf[host]...)
		}
	}
	if c.actSet[class] {
		for _, f := range c.ex.Deps.FragmentsOf[class] {
			out = append(out, c.layoutsOf[f]...)
		}
	}
	return out
}

// refsIn collects the normalized widget refs declared in the layouts.
func (c *ctx) refsIn(layouts []string) map[string]bool {
	refs := make(map[string]bool)
	for _, ln := range layouts {
		l := c.app.Layouts[ln]
		if l == nil {
			continue
		}
		l.Walk(func(w *layout.Widget) bool {
			if w.IDRef != "" {
				refs[apk.NormalizeRef(w.IDRef)] = true
			}
			return true
		})
	}
	return refs
}

// containersIn collects the normalized fragment-container refs of the layouts.
func (c *ctx) containersIn(layouts []string) map[string]bool {
	refs := make(map[string]bool)
	for _, ln := range layouts {
		l := c.app.Layouts[ln]
		if l == nil {
			continue
		}
		for _, ref := range l.Containers() {
			refs[apk.NormalizeRef(ref)] = true
		}
	}
	return refs
}

// FL001: an effective component the static reachability fixpoints prove
// unvisitable. An effective activity outside the launcher reach is only ever
// seen through forced starts; an effective fragment outside the forced-start
// ceiling cannot be confirmed by the explorer at all.
func (c *ctx) unreachableComponents() {
	for _, a := range c.ex.EffectiveActivities {
		if !c.ex.LauncherReach.Activities[a] {
			c.report(a, "", 0, "FL001", SeverityWarning,
				"effective activity %s is not reachable from the launcher; only forced empty-Intent starts can visit it", a)
		}
	}
	for _, f := range c.ex.EffectiveFragments {
		if !c.ex.StaticReach.Fragments[f] {
			c.report(f, "", 0, "FL001", SeverityWarning,
				"effective fragment %s is never transaction-committed, inflated or statically declared; the explorer cannot confirm it", f)
		}
	}
}

// FL002 + FL003: transaction bracketing. A begin-transaction that never
// commits leaks the transaction and the fragment never shows; a transaction
// operation without an open transaction is a programming error.
func (c *ctx) transactions() {
	c.eachMethod(func(class string, m *smali.Method) {
		open := false
		openLine := 0
		for _, ins := range m.Body {
			switch ins.Op {
			case smali.OpBeginTransaction:
				if open {
					c.report(class, m.Name, openLine, "FL002", SeverityError,
						"begin-transaction is never committed (a second begin-transaction follows at line %d)", ins.Line)
				}
				open, openLine = true, ins.Line
			case smali.OpTxnAdd, smali.OpTxnReplace, smali.OpTxnRemove:
				if !open {
					c.report(class, m.Name, ins.Line, "FL003", SeverityError,
						"%s outside a transaction (no begin-transaction in scope)", ins.Op)
				}
			case smali.OpTxnCommit:
				if !open {
					c.report(class, m.Name, ins.Line, "FL003", SeverityError,
						"txn-commit outside a transaction (no begin-transaction in scope)")
				}
				open = false
			}
		}
		if open {
			c.report(class, m.Name, openLine, "FL002", SeverityError,
				"begin-transaction is never committed; the fragment never shows")
		}
	})
}

// FL004 + FL005: click-handler wiring. A registered or XML-bound handler the
// owning component cannot resolve force-closes with NoSuchMethodException on
// the first click; a listener on a widget absent from every layout the owner
// can show never fires.
func (c *ctx) clickHandlers() {
	c.eachMethod(func(class string, m *smali.Method) {
		owner := outerComponent(class)
		for _, ins := range m.Body {
			if ins.Op != smali.OpSetClickListener {
				continue
			}
			ref, handler := apk.NormalizeRef(ins.Args[0]), ins.Args[1]
			if !c.resolves(owner, handler) {
				c.report(class, m.Name, ins.Line, "FL004", SeverityError,
					"set-click-listener names %s.%s which does not exist; a click force-closes with NoSuchMethodException", owner, handler)
			}
			if !c.refsIn(c.reachableLayouts(owner))[ref] {
				c.report(class, m.Name, ins.Line, "FL005", SeverityWarning,
					"set-click-listener on %s, which appears in no layout %s inflates; the listener never fires", ref, owner)
			}
		}
	})
	// XML android:onClick binds to the class that inflates the layout.
	for _, cn := range c.prog.Names() {
		if !c.actSet[cn] && !c.fragSet[cn] {
			continue
		}
		for _, ln := range c.layoutsOf[cn] {
			l := c.app.Layouts[ln]
			if l == nil {
				continue
			}
			l.Walk(func(w *layout.Widget) bool {
				if w.OnClick != "" && !c.resolves(cn, w.OnClick) {
					c.report(cn, "", 0, "FL004", SeverityError,
						"layout %s binds android:onClick=%q on %s, but %s has no such method; a click force-closes", ln, w.OnClick, w.IDRef, cn)
				}
				return true
			})
		}
	}
}

// FL006: explicit intent targets must be declared in the manifest, or the
// start throws ActivityNotFoundException at runtime.
func (c *ctx) intentTargets() {
	c.eachMethod(func(class string, m *smali.Method) {
		for _, ins := range m.Body {
			if ins.Op != smali.OpNewIntent && ins.Op != smali.OpSetClass {
				continue
			}
			dst := ins.Args[1]
			if !c.app.Manifest.HasActivity(dst) {
				c.report(class, m.Name, ins.Line, "FL006", SeverityError,
					"intent target %s is not declared in the manifest; the start throws ActivityNotFoundException", dst)
			}
		}
	})
}

// FL007: the container a transaction or inflation targets must exist in a
// content view the executing component can actually show — its own layouts,
// or (for fragment code) its hosts' layouts.
func (c *ctx) containers() {
	c.eachMethod(func(class string, m *smali.Method) {
		owner := outerComponent(class)
		var allowed map[string]bool
		for _, ins := range m.Body {
			switch ins.Op {
			case smali.OpTxnAdd, smali.OpTxnReplace, smali.OpInflateView:
			default:
				continue
			}
			if allowed == nil {
				allowed = c.containersIn(c.reachableLayouts(owner))
			}
			ref := apk.NormalizeRef(ins.Args[0])
			if !allowed[ref] {
				c.report(class, m.Name, ins.Line, "FL007", SeverityError,
					"%s targets container %s, which is in no content view of %s", ins.Op, ref, owner)
			}
		}
	})
}

// FL008: an activity guarded by require-extra that no caller ever
// put-extra's before starting is a statically guaranteed force close.
func (c *ctx) requireExtras() {
	type site struct {
		class, method, key string
		line               int
	}
	var required []site
	for a := range c.actSet {
		for _, cn := range c.prog.ClassAndInner(a) {
			cl := c.prog.Class(cn)
			if cl == nil {
				continue
			}
			for _, m := range cl.Methods {
				for _, ins := range m.Body {
					if ins.Op == smali.OpRequireExtra {
						required = append(required, site{cn, m.Name, ins.Args[0], ins.Line})
					}
				}
			}
		}
	}
	if len(required) == 0 {
		return
	}
	// supplied[activity][key]: some method both put-extra's the key and
	// starts the activity.
	supplied := make(map[string]map[string]bool)
	c.eachMethod(func(class string, m *smali.Method) {
		var keys, targets []string
		for _, ins := range m.Body {
			switch ins.Op {
			case smali.OpPutExtra:
				keys = append(keys, ins.Args[0])
			case smali.OpNewIntent, smali.OpSetClass:
				targets = append(targets, ins.Args[1])
			case smali.OpNewIntentAction, smali.OpSetAction:
				if target, ok := c.app.Manifest.ActivityForAction(ins.Args[0]); ok {
					targets = append(targets, target)
				}
			}
		}
		for _, target := range targets {
			for _, key := range keys {
				if supplied[target] == nil {
					supplied[target] = make(map[string]bool)
				}
				supplied[target][key] = true
			}
		}
	})
	sort.Slice(required, func(i, j int) bool {
		if required[i].class != required[j].class {
			return required[i].class < required[j].class
		}
		return required[i].line < required[j].line
	})
	for _, r := range required {
		owner := outerComponent(r.class)
		if !supplied[owner][r.key] {
			c.report(r.class, r.method, r.line, "FL008", SeverityError,
				"require-extra %q: no caller ever put-extra's it before starting %s; every launch force-closes", r.key, owner)
		}
	}
}

// FL009: a sensitive invocation in statically unreachable code can never be
// confirmed dynamically — dead code, an unvisitable component, or a receiver
// whose action nothing broadcasts.
func (c *ctx) unreachableSensitive() {
	reach := c.ex.StaticReach
	c.eachMethod(func(class string, m *smali.Method) {
		for _, ins := range m.Body {
			if ins.Op != smali.OpInvokeSensitive && ins.Op != smali.OpLoadLibrary {
				continue
			}
			if reach.Methods[class+"."+m.Name] {
				continue
			}
			api := "shell/loadLibrary"
			if ins.Op == smali.OpInvokeSensitive {
				api = ins.Args[0]
			}
			c.report(class, m.Name, ins.Line, "FL009", SeverityWarning,
				"sensitive call %s is statically unreachable; the dynamic phase can never confirm it", api)
		}
	})
}

// FL010: a statically reachable sensitive API whose guarding permission the
// manifest does not declare fails with SecurityException at runtime.
func (c *ctx) permissions() {
	declared := make(map[string]bool)
	for _, p := range c.app.Manifest.Permissions {
		declared[p.Name] = true
	}
	for _, api := range c.ex.StaticReach.APIList() {
		var missing []string
		for _, p := range sensitive.PermissionsFor(api) {
			if !declared[p] {
				missing = append(missing, p)
			}
		}
		if len(missing) == 0 {
			continue
		}
		owners := c.ex.StaticReach.APIs[api]
		class := ""
		if len(owners) > 0 {
			class = owners[0]
		}
		c.report(class, "", 0, "FL010", SeverityError,
			"reachable sensitive API %s (invoked by %s) requires undeclared permission %s",
			api, strings.Join(owners, ", "), strings.Join(missing, ", "))
	}
}

// FL011 + FL012: implicit intents and broadcasts that resolve to nothing
// inside the app. Actions in the android.* namespace are assumed to target
// the system and are not reported.
func (c *ctx) actionsAndBroadcasts() {
	c.eachMethod(func(class string, m *smali.Method) {
		for _, ins := range m.Body {
			switch ins.Op {
			case smali.OpNewIntentAction, smali.OpSetAction:
				action := ins.Args[0]
				if strings.HasPrefix(action, "android.") {
					continue
				}
				if _, ok := c.app.Manifest.ActivityForAction(action); !ok {
					c.report(class, m.Name, ins.Line, "FL011", SeverityWarning,
						"intent action %q resolves to no declared activity", action)
				}
			case smali.OpSendBroadcast:
				action := ins.Args[0]
				if strings.HasPrefix(action, "android.") {
					continue
				}
				if len(c.app.Manifest.ReceiversFor(action)) == 0 {
					c.report(class, m.Name, ins.Line, "FL012", SeverityWarning,
						"no declared receiver subscribes to broadcast %q; it is dropped", action)
				}
			}
		}
	})
}

func layoutRefName(ref string) (string, bool) {
	s := strings.TrimPrefix(strings.TrimPrefix(ref, "@+"), "@")
	if rest, ok := strings.CutPrefix(s, "layout/"); ok && rest != "" {
		return rest, true
	}
	return "", false
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// FL013: a sensitive site the static reach proves live, but that no
// launcher-rooted UI path can actuate: either the launcher fixpoint never
// reaches its component, or every enumerated launcher path contains an edge
// the lowering cannot drive (an unbound click dispatch, a gated reflective
// switch, receiver-only code). Either way, only forced starts can confirm the
// site — the message names the blocking edge so the gap is actionable.
func (c *ctx) launcherBlockedSensitive() {
	p := paths.New(c.ex, paths.Config{LauncherOnly: true, DefaultInput: "x"})
	apis := make([]string, 0, len(c.ex.StaticReach.APIs))
	for api := range c.ex.StaticReach.APIs {
		apis = append(apis, api)
	}
	sort.Strings(apis)
	for _, api := range apis {
		for _, owner := range c.ex.StaticReach.APIs[api] {
			sp := p.PlanSite(api, owner)
			if sp.Liftable() {
				continue
			}
			class, method, line := launcherSiteOf(c.ex, api, owner)
			reason := "no launcher path reaches it within the search bounds"
			if b, ok := sp.Blocking(); ok && b.Cause != paths.CauseSearchBound {
				reason = fmt.Sprintf("every launcher path is blocked (%s)", b)
			}
			c.report(class, method, line, "FL013", SeverityWarning,
				"sensitive call %s in %s cannot be actuated from the launcher UI: %s; only forced starts can confirm it",
				api, owner, reason)
		}
	}
}

// launcherSiteOf locates the first call-graph site of the (api, owner) relation
// for diagnostic positioning; the owner component itself when no method site
// matches (receiver relations attribute to the component).
func launcherSiteOf(ex *statics.Extraction, api, owner string) (class, method string, line int) {
	for _, s := range ex.Graph().Sites() {
		if s.API == api && outerComponent(s.Node.Class) == owner {
			return s.Node.Class, s.Node.Method, s.Line
		}
	}
	return owner, "", 0
}
