package sensitive

import (
	"reflect"
	"testing"
)

func TestCatalogShape(t *testing.T) {
	if len(Catalog) != 46 {
		t.Fatalf("catalog size = %d, want 46 (the paper found 46 sensitive APIs)", len(Catalog))
	}
	seen := make(map[string]bool)
	for _, api := range Catalog {
		if seen[api] {
			t.Errorf("duplicate catalog entry %s", api)
		}
		seen[api] = true
		if Category(api) == "other" {
			t.Errorf("catalog entry %s has no category", api)
		}
		if !Known(api) {
			t.Errorf("Known(%s) = false", api)
		}
	}
	if Known("bogus/api") {
		t.Error("unknown API reported known")
	}
}

func TestCategories(t *testing.T) {
	cats := Categories()
	want := []string{"browser", "identification", "internet", "ipc", "location",
		"media", "messages", "network", "phone", "shell", "storage", "system", "view"}
	if !reflect.DeepEqual(cats, want) {
		t.Fatalf("Categories = %v", cats)
	}
}

func TestSortAPIs(t *testing.T) {
	apis := []string{"view/loadUrl", "browser/Downloads", "internet/inet", "internet/connect", "zzz/unknown"}
	SortAPIs(apis)
	want := []string{"browser/Downloads", "internet/connect", "internet/inet", "view/loadUrl", "zzz/unknown"}
	if !reflect.DeepEqual(apis, want) {
		t.Fatalf("SortAPIs = %v", apis)
	}
}

func ev(api, class string, inFrag bool) Event {
	return Event{API: api, Class: class, InFragment: inFrag, Activity: "a.Main"}
}

func TestCollectorMarks(t *testing.T) {
	c := NewCollector("com.app")
	c.Observe(ev("internet/connect", "a.Main", false))
	c.Observe(ev("internet/connect", "a.Main", false))
	c.Observe(ev("storage/sdcard", "a.Frag", true))
	c.Observe(ev("location/getProviders", "a.Main", false))
	c.Observe(ev("location/getProviders", "a.Frag", true))

	us := c.Usages()
	if len(us) != 3 {
		t.Fatalf("usages = %+v", us)
	}
	byAPI := make(map[string]Usage)
	for _, u := range us {
		byAPI[u.API] = u
	}
	if m := byAPI["internet/connect"].Mark(); m != MarkActivity {
		t.Errorf("connect mark = %v", m)
	}
	if m := byAPI["storage/sdcard"].Mark(); m != MarkFragment {
		t.Errorf("sdcard mark = %v", m)
	}
	if m := byAPI["location/getProviders"].Mark(); m != MarkBoth {
		t.Errorf("getProviders mark = %v", m)
	}
	if byAPI["internet/connect"].Count != 2 {
		t.Errorf("count = %d", byAPI["internet/connect"].Count)
	}
	if got := byAPI["location/getProviders"].Classes; !reflect.DeepEqual(got, []string{"a.Frag", "a.Main"}) {
		t.Errorf("classes = %v", got)
	}
	// Usages sorted in catalog row order: internet < location < storage.
	if us[0].API != "internet/connect" || us[2].API != "storage/sdcard" {
		t.Errorf("order = %v", us)
	}
}

func TestMarkRendering(t *testing.T) {
	cases := []struct {
		m     Mark
		sym   string
		ascii string
	}{
		{MarkNone, " ", "."},
		{MarkActivity, "●", "A"},
		{MarkFragment, "◐", "F"},
		{MarkBoth, "⊙", "B"},
	}
	for _, tc := range cases {
		if tc.m.String() != tc.sym || tc.m.ASCII() != tc.ascii {
			t.Errorf("mark %d renders %q/%q", tc.m, tc.m.String(), tc.m.ASCII())
		}
	}
}

func TestMatrixAndStats(t *testing.T) {
	c1 := NewCollector("app1")
	c1.Observe(ev("internet/connect", "x.A", false)) // ● 1 relation
	c1.Observe(ev("storage/sdcard", "x.F", true))    // ◐ 1 relation, frag-only
	c2 := NewCollector("app2")
	c2.Observe(ev("internet/connect", "y.A", false))
	c2.Observe(ev("internet/connect", "y.F", true)) // ⊙ 2 relations

	m := NewMatrix([]*Collector{c1, c2})
	if !reflect.DeepEqual(m.Apps, []string{"app1", "app2"}) {
		t.Fatalf("apps = %v", m.Apps)
	}
	if !reflect.DeepEqual(m.APIs, []string{"internet/connect", "storage/sdcard"}) {
		t.Fatalf("apis = %v", m.APIs)
	}
	if m.Cell("internet/connect", "app2") != MarkBoth {
		t.Errorf("cell = %v", m.Cell("internet/connect", "app2"))
	}
	if m.Cell("storage/sdcard", "app2") != MarkNone {
		t.Errorf("empty cell = %v", m.Cell("storage/sdcard", "app2"))
	}

	s := m.ComputeStats()
	if s.DistinctAPIs != 2 {
		t.Errorf("DistinctAPIs = %d", s.DistinctAPIs)
	}
	if s.TotalInvocations != 4 { // ● + ◐ + ⊙(2)
		t.Errorf("TotalInvocations = %d", s.TotalInvocations)
	}
	if s.FragmentRelations != 2 || s.FragmentOnly != 1 {
		t.Errorf("frag relations = %d/%d", s.FragmentRelations, s.FragmentOnly)
	}
	if s.FragmentShare != 0.5 || s.FragmentOnlyShare != 0.25 {
		t.Errorf("shares = %v/%v", s.FragmentShare, s.FragmentOnlyShare)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestEmptyMatrixStats(t *testing.T) {
	m := NewMatrix(nil)
	s := m.ComputeStats()
	if s.TotalInvocations != 0 || s.FragmentShare != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
