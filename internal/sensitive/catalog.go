// Package sensitive implements FragDroid's sensitive-API analysis (§VII-C):
// the XPrivacy-derived catalog of monitored functions, a runtime collector
// that attributes invocations to Activities and/or Fragments, and the
// cross-application matrix plus aggregate statistics behind Table II.
package sensitive

import (
	"sort"
	"strings"
)

// Catalog lists the monitored sensitive APIs, keyed "category/name" exactly
// as Table II prints them. The set follows the common sensitive operation
// functions defined by XPrivacy that the paper selected.
var Catalog = []string{
	"browser/Downloads",

	"identification//proc",
	"identification/getString",
	"identification/SERIAL",

	"internet/connect",
	"internet/Connectivity.getActiveNetworkInfo",
	"internet/Connectivity.getNetworkInfo",
	"internet/inet",
	"internet/InetAddress.getAllByName",
	"internet/InetAddress.getByAddress",
	"internet/InetAddress.getByName",
	"internet/IpPrefix.getAddress",
	"internet/LinkProperties.getLinkAddresses",
	"internet/NetworkInfo.getDetailedState",
	"internet/NetworkInfo.isConnected",
	"internet/NetworkInfo.isConnectedOrConnecting",
	"internet/NetworkInterface.getNetworkInterfaces",
	"internet/WiFi.getConnectionInfo",

	"ipc/Binder",

	"location/getAllProviders",
	"location/getProviders",
	"location/isProviderEnabled",
	"location/requestLocationUpdates",

	"media/Camera.setPreviewTexture",
	"media/Camera.startPreview",

	"messages/MmsProvider",

	"network/NetworkInterface.getInetAddresses",
	"network/WiFi.getConfiguredNetworks",
	"network/WiFi.getConnectionInfo",

	"phone/Configuration.MCC",
	"phone/Configuration.MNC",
	"phone/getDeviceId",
	"phone/getNetworkCountryIso",
	"phone/getNetworkOperatorName",

	"shell/loadLibrary",

	"storage/getExternalStorageState",
	"storage/open",
	"storage/sdcard",

	"system/getInstalledApplications",
	"system/getRunningAppProcesses",
	"system/queryIntentActivities",
	"system/queryIntentServices",

	"view/getUserAgentString",
	"view/initUserAgentString",
	"view/loadUrl",
	"view/setUserAgentString",
}

var catalogSet = func() map[string]bool {
	m := make(map[string]bool, len(Catalog))
	for _, api := range Catalog {
		m[api] = true
	}
	return m
}()

// Known reports whether the API belongs to the monitored catalog.
func Known(api string) bool { return catalogSet[api] }

// Category extracts the category prefix of an API ("location/getProviders" →
// "location"). APIs without a slash fall into "other".
func Category(api string) string {
	if i := strings.IndexByte(api, '/'); i > 0 {
		return api[:i]
	}
	return "other"
}

// Categories returns the distinct catalog categories in Table II order
// (first appearance).
func Categories() []string {
	var out []string
	seen := make(map[string]bool)
	for _, api := range Catalog {
		c := Category(api)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// SortAPIs orders APIs by category (catalog order) then name, the row order
// of Table II.
func SortAPIs(apis []string) {
	catRank := make(map[string]int)
	for i, c := range Categories() {
		catRank[c] = i
	}
	sort.Slice(apis, func(i, j int) bool {
		ci, cj := Category(apis[i]), Category(apis[j])
		ri, okI := catRank[ci]
		rj, okJ := catRank[cj]
		if !okI {
			ri = len(catRank)
		}
		if !okJ {
			rj = len(catRank)
		}
		if ri != rj {
			return ri < rj
		}
		return apis[i] < apis[j]
	})
}
