package sensitive_test

import (
	"fmt"

	"fragdroid/internal/sensitive"
)

// A collector aggregates runtime observations into Table II cells: an API
// seen from both an Activity and a Fragment renders as ⊙.
func ExampleCollector() {
	c := sensitive.NewCollector("com.app")
	c.Observe(sensitive.Event{API: "location/getProviders", Class: "com.app.Main"})
	c.Observe(sensitive.Event{API: "location/getProviders", Class: "com.app.MapFragment", InFragment: true})
	c.Observe(sensitive.Event{API: "storage/sdcard", Class: "com.app.GalleryFragment", InFragment: true})
	for _, u := range c.Usages() {
		fmt.Printf("[%s] %s\n", u.Mark().ASCII(), u.API)
	}
	// Output:
	// [B] location/getProviders
	// [F] storage/sdcard
}

// AuditPermissions flags observed APIs whose guarding permission the
// manifest never declared.
func ExampleAuditPermissions() {
	c := sensitive.NewCollector("com.app")
	c.Observe(sensitive.Event{API: "media/Camera.startPreview", Class: "com.app.CamFragment", InFragment: true})
	findings := sensitive.AuditPermissions([]string{"android.permission.INTERNET"}, c.Usages())
	for _, f := range findings {
		fmt.Println(f.API, "missing", f.Missing)
	}
	// Output:
	// media/Camera.startPreview missing [android.permission.CAMERA]
}
