package sensitive

import (
	"reflect"
	"testing"
)

func TestPermissionsFor(t *testing.T) {
	if got := PermissionsFor("location/getProviders"); !reflect.DeepEqual(got,
		[]string{"android.permission.ACCESS_FINE_LOCATION"}) {
		t.Fatalf("location perms = %v", got)
	}
	if got := PermissionsFor("identification/SERIAL"); got != nil {
		t.Fatalf("identification needs no permission, got %v", got)
	}
	if got := PermissionsFor("shell/loadLibrary"); got != nil {
		t.Fatalf("shell needs no permission, got %v", got)
	}
	// Every guarded category resolves for at least one catalog API.
	for _, cat := range GuardedCategories() {
		found := false
		for _, api := range Catalog {
			if Category(api) == cat && len(PermissionsFor(api)) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("guarded category %s has no catalog API", cat)
		}
	}
}

func TestAuditPermissions(t *testing.T) {
	usages := []Usage{
		{API: "location/getProviders", ByActivity: true, Classes: []string{"a.Main"}},
		{API: "internet/connect", ByFragment: true, Classes: []string{"a.Frag"}},
		{API: "identification/SERIAL", ByActivity: true, Classes: []string{"a.Main"}},
	}
	// Nothing declared: both guarded APIs flagged, the unguarded one not.
	findings := AuditPermissions(nil, usages)
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].API != "location/getProviders" && findings[1].API != "location/getProviders" {
		t.Errorf("location finding missing: %+v", findings)
	}
	// Declaring the permissions clears the findings.
	declared := []string{
		"android.permission.ACCESS_FINE_LOCATION",
		"android.permission.INTERNET",
	}
	if f := AuditPermissions(declared, usages); len(f) != 0 {
		t.Fatalf("declared run still finds %+v", f)
	}
	// Partial declaration flags only the gap.
	f := AuditPermissions([]string{"android.permission.INTERNET"}, usages)
	if len(f) != 1 || f[0].API != "location/getProviders" {
		t.Fatalf("partial = %+v", f)
	}
	if !reflect.DeepEqual(f[0].Missing, []string{"android.permission.ACCESS_FINE_LOCATION"}) {
		t.Fatalf("missing = %v", f[0].Missing)
	}
}
