package sensitive

import (
	"fmt"
	"sort"
)

// Event is one observed sensitive-API invocation. It mirrors the device
// monitor's event shape without importing the device package (the corpus
// depends on this package, and the device depends on corpus fixtures in its
// tests).
type Event struct {
	API        string
	Class      string
	InFragment bool
	Activity   string
}

// Mark is a Table II cell: how an app invokes a sensitive API.
type Mark int

const (
	// MarkNone means the API was not observed for the app.
	MarkNone Mark = iota
	// MarkActivity means invoked by Activity code only (Table II ●).
	MarkActivity
	// MarkFragment means invoked by Fragment code only (Table II ◐).
	MarkFragment
	// MarkBoth means invoked by both (Table II ⊙).
	MarkBoth
)

// String renders the Table II symbol (ASCII fallback forms are available via
// ASCII()).
func (m Mark) String() string {
	switch m {
	case MarkActivity:
		return "●"
	case MarkFragment:
		return "◐"
	case MarkBoth:
		return "⊙"
	default:
		return " "
	}
}

// ASCII renders a plain-text form: A, F, B or blank.
func (m Mark) ASCII() string {
	switch m {
	case MarkActivity:
		return "A"
	case MarkFragment:
		return "F"
	case MarkBoth:
		return "B"
	default:
		return "."
	}
}

// Usage aggregates the observations of one API within one app.
type Usage struct {
	API        string
	ByActivity bool
	ByFragment bool
	// Count is the raw number of observed invocation events.
	Count int
	// Classes lists the invoking classes, sorted.
	Classes []string
}

// Mark folds the attribution flags into a Table II cell.
func (u Usage) Mark() Mark {
	switch {
	case u.ByActivity && u.ByFragment:
		return MarkBoth
	case u.ByFragment:
		return MarkFragment
	case u.ByActivity:
		return MarkActivity
	default:
		return MarkNone
	}
}

// Collector accumulates sensitive events for one app run. Plug Observe into
// device.Options.Monitor.
type Collector struct {
	app     string
	byAPI   map[string]*Usage
	classes map[string]map[string]bool
}

// NewCollector returns a collector for the given app package.
func NewCollector(appPkg string) *Collector {
	return &Collector{
		app:     appPkg,
		byAPI:   make(map[string]*Usage),
		classes: make(map[string]map[string]bool),
	}
}

// App returns the application package the collector belongs to.
func (c *Collector) App() string { return c.app }

// Observe records one sensitive event.
func (c *Collector) Observe(e Event) {
	u := c.byAPI[e.API]
	if u == nil {
		u = &Usage{API: e.API}
		c.byAPI[e.API] = u
		c.classes[e.API] = make(map[string]bool)
	}
	u.Count++
	if e.InFragment {
		u.ByFragment = true
	} else {
		u.ByActivity = true
	}
	c.classes[e.API][e.Class] = true
}

// Has reports whether the API has been observed at least once.
func (c *Collector) Has(api string) bool {
	_, ok := c.byAPI[api]
	return ok
}

// Usages returns the aggregated per-API usages in Table II row order.
func (c *Collector) Usages() []Usage {
	apis := make([]string, 0, len(c.byAPI))
	for api := range c.byAPI {
		apis = append(apis, api)
	}
	SortAPIs(apis)
	out := make([]Usage, 0, len(apis))
	for _, api := range apis {
		u := *c.byAPI[api]
		for cls := range c.classes[api] {
			u.Classes = append(u.Classes, cls)
		}
		sort.Strings(u.Classes)
		out = append(out, u)
	}
	return out
}

// Matrix is the cross-application view behind Table II.
type Matrix struct {
	// Apps are the column packages, in insertion order.
	Apps []string
	// APIs are the row keys in Table II order.
	APIs []string
	// cells maps "api|app" to the mark.
	cells map[string]Mark
}

// NewMatrix builds a matrix from per-app collectors.
func NewMatrix(collectors []*Collector) *Matrix {
	m := &Matrix{cells: make(map[string]Mark)}
	apiSet := make(map[string]bool)
	for _, c := range collectors {
		m.Apps = append(m.Apps, c.app)
		for _, u := range c.Usages() {
			apiSet[u.API] = true
			m.cells[u.API+"|"+c.app] = u.Mark()
		}
	}
	for api := range apiSet {
		m.APIs = append(m.APIs, api)
	}
	SortAPIs(m.APIs)
	return m
}

// Cell returns the mark for (api, app).
func (m *Matrix) Cell(api, app string) Mark { return m.cells[api+"|"+app] }

// Stats are the §VII-C aggregates. An invocation relation is one (app, API,
// component-kind) triple: a Both cell contributes two relations, an
// Activity-only or Fragment-only cell one. FragmentShare is the fraction of
// relations attributed to Fragments ("the API invocations associated with
// Fragments account for 49% of the total invocations"); FragmentOnlyShare is
// the fraction visible *only* from Fragments — the lower bound of what
// Activity-level tools miss ("at least 9.6%").
type Stats struct {
	DistinctAPIs      int
	TotalInvocations  int
	FragmentRelations int
	FragmentOnly      int
	FragmentShare     float64
	FragmentOnlyShare float64
}

// ComputeStats derives the aggregates of the matrix.
func (m *Matrix) ComputeStats() Stats {
	var s Stats
	s.DistinctAPIs = len(m.APIs)
	for _, api := range m.APIs {
		for _, app := range m.Apps {
			switch m.Cell(api, app) {
			case MarkActivity:
				s.TotalInvocations++
			case MarkFragment:
				s.TotalInvocations++
				s.FragmentRelations++
				s.FragmentOnly++
			case MarkBoth:
				s.TotalInvocations += 2
				s.FragmentRelations++
			}
		}
	}
	if s.TotalInvocations > 0 {
		s.FragmentShare = float64(s.FragmentRelations) / float64(s.TotalInvocations)
		s.FragmentOnlyShare = float64(s.FragmentOnly) / float64(s.TotalInvocations)
	}
	return s
}

// String summarizes the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d sensitive APIs, %d invocation relations, %.0f%% fragment-associated, %.1f%% fragment-only",
		s.DistinctAPIs, s.TotalInvocations, 100*s.FragmentShare, 100*s.FragmentOnlyShare)
}
