package sensitive

import "sort"

// categoryPermissions maps sensitive-API categories to the Android
// permissions guarding them. Categories with no entry are callable without a
// dangerous permission (which is exactly why XPrivacy monitors them: "most
// sensitive operations are allowed by default at the time of installing an
// app", §VII-C).
var categoryPermissions = map[string][]string{
	"browser":  {"com.android.browser.permission.READ_HISTORY_BOOKMARKS"},
	"internet": {"android.permission.INTERNET"},
	"location": {"android.permission.ACCESS_FINE_LOCATION"},
	"media":    {"android.permission.CAMERA"},
	"messages": {"android.permission.READ_SMS"},
	"network":  {"android.permission.ACCESS_NETWORK_STATE"},
	"phone":    {"android.permission.READ_PHONE_STATE"},
	"storage":  {"android.permission.WRITE_EXTERNAL_STORAGE"},
}

// PermissionsFor returns the permissions guarding an API, nil when the API
// needs none.
func PermissionsFor(api string) []string {
	return append([]string(nil), categoryPermissions[Category(api)]...)
}

// GuardedCategories lists the categories that require a permission, sorted.
func GuardedCategories() []string {
	out := make([]string, 0, len(categoryPermissions))
	for c := range categoryPermissions {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// PermissionFinding reports one observed API invocation whose guarding
// permission the manifest does not declare — either a latent crash
// (SecurityException at runtime) or evidence of a permission bypass.
type PermissionFinding struct {
	API     string
	Classes []string
	Missing []string
}

// AuditPermissions checks every observed usage against the declared
// permission set and returns the findings in catalog order.
func AuditPermissions(declared []string, usages []Usage) []PermissionFinding {
	have := make(map[string]bool, len(declared))
	for _, p := range declared {
		have[p] = true
	}
	var out []PermissionFinding
	for _, u := range usages {
		var missing []string
		for _, p := range PermissionsFor(u.API) {
			if !have[p] {
				missing = append(missing, p)
			}
		}
		if len(missing) == 0 {
			continue
		}
		out = append(out, PermissionFinding{
			API:     u.API,
			Classes: append([]string(nil), u.Classes...),
			Missing: missing,
		})
	}
	return out
}
