package res

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefineAndLookup(t *testing.T) {
	tbl := NewTable()
	id, err := tbl.Define(KindID, "btn_login")
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	got, ok := tbl.Lookup(KindID, "btn_login")
	if !ok || got != id {
		t.Fatalf("Lookup = %v, %v; want %v, true", got, ok, id)
	}
	if e, ok := tbl.NameOf(id); !ok || e.Name != "btn_login" || e.Kind != KindID {
		t.Fatalf("NameOf = %+v, %v", e, ok)
	}
}

func TestDefineIdempotent(t *testing.T) {
	tbl := NewTable()
	a := tbl.MustDefine(KindLayout, "main")
	b := tbl.MustDefine(KindLayout, "main")
	if a != b {
		t.Fatalf("re-Define allocated new ID: %v vs %v", a, b)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestDefineErrors(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Define(KindID, ""); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := tbl.Define(Kind(99), "x"); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	tbl := NewTable()
	seen := make(map[ID]string)
	for _, k := range []Kind{KindID, KindLayout, KindString, KindDrawable, KindMenu} {
		for _, name := range []string{"a", "b", "c"} {
			id := tbl.MustDefine(k, name)
			if prev, dup := seen[id]; dup {
				t.Fatalf("ID collision: %v for both %s and %s/%s", id, prev, k, name)
			}
			seen[id] = k.String() + "/" + name
			if id.Kind() != k {
				t.Errorf("ID %v decodes kind %v, want %v", id, id.Kind(), k)
			}
			if !id.Valid() {
				t.Errorf("ID %v not Valid", id)
			}
		}
	}
}

func TestParseRef(t *testing.T) {
	tests := []struct {
		ref      string
		wantKind Kind
		wantName string
		wantErr  bool
	}{
		{"@id/btn", KindID, "btn", false},
		{"@+id/btn", KindID, "btn", false},
		{"@layout/main", KindLayout, "main", false},
		{"@string/app_name", KindString, "app_name", false},
		{"@drawable/icon", KindDrawable, "icon", false},
		{"@menu/drawer", KindMenu, "drawer", false},
		{"id/btn", 0, "", true},
		{"@bogus/btn", 0, "", true},
		{"@id/", 0, "", true},
		{"@/name", 0, "", true},
		{"@id", 0, "", true},
		{"", 0, "", true},
	}
	for _, tc := range tests {
		k, n, err := ParseRef(tc.ref)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseRef(%q): want error, got %v/%v", tc.ref, k, n)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRef(%q): %v", tc.ref, err)
			continue
		}
		if k != tc.wantKind || n != tc.wantName {
			t.Errorf("ParseRef(%q) = %v,%q; want %v,%q", tc.ref, k, n, tc.wantKind, tc.wantName)
		}
	}
}

func TestResolve(t *testing.T) {
	tbl := NewTable()
	want := tbl.MustDefine(KindID, "container")
	got, err := tbl.Resolve("@id/container")
	if err != nil || got != want {
		t.Fatalf("Resolve = %v, %v; want %v, nil", got, err, want)
	}
	if _, err := tbl.Resolve("@id/missing"); err == nil {
		t.Fatal("Resolve of undefined ref: want error")
	} else {
		var ue *UnresolvedError
		if !asUnresolved(err, &ue) {
			t.Fatalf("error type = %T, want *UnresolvedError", err)
		}
		if !strings.Contains(ue.Error(), "@id/missing") {
			t.Errorf("error message %q does not mention ref", ue.Error())
		}
	}
}

func asUnresolved(err error, target **UnresolvedError) bool {
	ue, ok := err.(*UnresolvedError)
	if ok {
		*target = ue
	}
	return ok
}

func TestResolveOrDefine(t *testing.T) {
	tbl := NewTable()
	id, err := tbl.ResolveOrDefine("@+id/new_widget")
	if err != nil {
		t.Fatalf("ResolveOrDefine: %v", err)
	}
	again, err := tbl.Resolve("@id/new_widget")
	if err != nil || again != id {
		t.Fatalf("subsequent Resolve = %v, %v; want %v, nil", again, err, id)
	}
}

func TestEntriesSortedAndRefRoundTrip(t *testing.T) {
	tbl := NewTable()
	tbl.MustDefine(KindLayout, "main")
	tbl.MustDefine(KindID, "btn")
	tbl.MustDefine(KindID, "txt")
	es := tbl.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries len = %d, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("Entries not sorted: %v then %v", es[i-1].ID, es[i].ID)
		}
	}
	for _, e := range es {
		k, n, err := ParseRef(e.Ref())
		if err != nil || k != e.Kind || n != e.Name {
			t.Errorf("Ref round trip failed for %+v: %v %v %v", e, k, n, err)
		}
	}
}

func TestClone(t *testing.T) {
	tbl := NewTable()
	tbl.MustDefine(KindID, "a")
	cl := tbl.Clone()
	cl.MustDefine(KindID, "b")
	if _, ok := tbl.Lookup(KindID, "b"); ok {
		t.Fatal("Clone leaked definition into original")
	}
	if _, ok := cl.Lookup(KindID, "a"); !ok {
		t.Fatal("Clone missing original definition")
	}
	// Fresh definitions in original and clone must not collide in meaning.
	origB := tbl.MustDefine(KindID, "b")
	cloneB, _ := cl.Lookup(KindID, "b")
	if origB != cloneB {
		// IDs are allocated by per-kind counters, so identical definition
		// sequences yield identical IDs; divergence is fine, equality is
		// expected here because both allocated "b" as the second KindID.
		t.Fatalf("deterministic allocation violated: %v vs %v", origB, cloneB)
	}
}

// Property: for any sequence of (kind, name) definitions, IDs are unique per
// distinct pair, stable on re-definition, and round-trip through NameOf.
func TestQuickDefineProperties(t *testing.T) {
	kinds := []Kind{KindID, KindLayout, KindString, KindDrawable, KindMenu}
	f := func(pairs []struct {
		K uint8
		N string
	}) bool {
		tbl := NewTable()
		got := make(map[string]ID)
		for _, p := range pairs {
			if p.N == "" {
				continue
			}
			k := kinds[int(p.K)%len(kinds)]
			id, err := tbl.Define(k, p.N)
			if err != nil {
				return false
			}
			key := k.String() + "/" + p.N
			if prev, ok := got[key]; ok && prev != id {
				return false
			}
			got[key] = id
			e, ok := tbl.NameOf(id)
			if !ok || e.Name != p.N || e.Kind != k {
				return false
			}
		}
		// Distinct pairs must have distinct IDs.
		seen := make(map[ID]bool)
		for _, id := range got {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return tbl.Len() == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
