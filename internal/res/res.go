// Package res implements the resource-ID table of a synthetic Android
// application package. It plays the role of the generated R class in a real
// Android build: every identifiable resource (widget ID, layout, string,
// drawable) is assigned a unique 32-bit number, and references of the form
// "@id/name", "@layout/name", ... are resolved against the table.
//
// FragDroid's resource-dependency extraction (Algorithm 3 of the paper)
// matches widgets to their host Activities and Fragments purely through
// resource IDs, so the table is shared between the static-analysis and
// dynamic-execution halves of the system.
package res

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a resource entry, mirroring the R.<kind> namespaces of a
// real Android resource table.
type Kind int

const (
	// KindID identifies view/widget IDs (R.id.*).
	KindID Kind = iota + 1
	// KindLayout identifies layout files (R.layout.*).
	KindLayout
	// KindString identifies string resources (R.string.*).
	KindString
	// KindDrawable identifies drawable resources (R.drawable.*).
	KindDrawable
	// KindMenu identifies menu resources (R.menu.*).
	KindMenu
)

var kindNames = map[Kind]string{
	KindID:       "id",
	KindLayout:   "layout",
	KindString:   "string",
	KindDrawable: "drawable",
	KindMenu:     "menu",
}

var kindsByName = map[string]Kind{
	"id":       KindID,
	"layout":   KindLayout,
	"string":   KindString,
	"drawable": KindDrawable,
	"menu":     KindMenu,
}

// String returns the R-namespace name of the kind ("id", "layout", ...).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromName maps an R-namespace name back to its Kind. The boolean result
// reports whether the name is known.
func KindFromName(name string) (Kind, bool) {
	k, ok := kindsByName[name]
	return k, ok
}

// ID is a resolved resource identifier. Like Android's aapt numbering, the
// kind is encoded in the upper bits so IDs of different kinds never collide.
type ID uint32

// base offsets per kind, in the spirit of aapt's 0x7fTTEEEE scheme.
const (
	idBase    = 0x7f080000
	kindShift = 16
)

// Kind extracts the resource kind encoded in the ID.
func (id ID) Kind() Kind {
	return Kind((uint32(id) - idBase) >> kindShift)
}

// Valid reports whether the ID carries a known kind encoding.
func (id ID) Valid() bool {
	k := id.Kind()
	_, ok := kindNames[k]
	return uint32(id) >= idBase && ok
}

// Entry is a single named resource in the table.
type Entry struct {
	Kind Kind
	Name string
	ID   ID
}

// refKey is the composite (kind, name) lookup key. A comparable struct key
// avoids the per-lookup string concatenation a "kind/name" key would cost on
// the resolve-heavy static-analysis paths.
type refKey struct {
	kind Kind
	name string
}

// Table allocates and resolves resource IDs. The zero value is not ready for
// use; call NewTable.
type Table struct {
	byRef  map[refKey]Entry
	byID   map[ID]Entry
	counts map[Kind]uint32
}

// NewTable returns an empty resource table.
func NewTable() *Table {
	return NewTableSized(0)
}

// NewTableSized returns an empty resource table pre-sized for about hint
// entries, so bulk loaders (the artifact-store decoder knows the final entry
// count up front) avoid growing the maps incrementally.
func NewTableSized(hint int) *Table {
	return &Table{
		byRef:  make(map[refKey]Entry, hint),
		byID:   make(map[ID]Entry, hint),
		counts: make(map[Kind]uint32),
	}
}

// Define allocates an ID for (kind, name), or returns the existing one if the
// pair is already defined. Names must be non-empty.
func (t *Table) Define(kind Kind, name string) (ID, error) {
	if name == "" {
		return 0, fmt.Errorf("res: empty resource name for kind %s", kind)
	}
	if _, ok := kindNames[kind]; !ok {
		return 0, fmt.Errorf("res: unknown resource kind %d", int(kind))
	}
	key := refKey{kind, name}
	if e, ok := t.byRef[key]; ok {
		return e.ID, nil
	}
	n := t.counts[kind]
	t.counts[kind] = n + 1
	id := ID(idBase + uint32(kind)<<kindShift + n)
	e := Entry{Kind: kind, Name: name, ID: id}
	t.byRef[key] = e
	t.byID[id] = e
	return id, nil
}

// MustDefine is Define for callers constructing tables from trusted,
// programmatic input (e.g. the corpus builders). It panics on error.
func (t *Table) MustDefine(kind Kind, name string) ID {
	id, err := t.Define(kind, name)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup resolves (kind, name) to its ID. The boolean result reports whether
// the resource is defined.
func (t *Table) Lookup(kind Kind, name string) (ID, bool) {
	e, ok := t.byRef[refKey{kind, name}]
	return e.ID, ok
}

// NameOf returns the entry for id. The boolean result reports whether the ID
// is defined in this table.
func (t *Table) NameOf(id ID) (Entry, bool) {
	e, ok := t.byID[id]
	return e, ok
}

// Resolve parses and resolves a textual reference of the form "@kind/name"
// (for example "@id/btn_login" or "@layout/main"). Undefined references are
// an error: the static analyzer treats a dangling reference as a malformed
// package.
func (t *Table) Resolve(ref string) (ID, error) {
	kind, name, err := ParseRef(ref)
	if err != nil {
		return 0, err
	}
	id, ok := t.Lookup(kind, name)
	if !ok {
		return 0, &UnresolvedError{Ref: ref}
	}
	return id, nil
}

// ResolveOrDefine parses ref and resolves it, defining it first if absent.
// Layout loaders use this so that layouts may introduce fresh widget IDs, as
// "@+id/name" does in real Android layout files.
func (t *Table) ResolveOrDefine(ref string) (ID, error) {
	kind, name, err := ParseRef(ref)
	if err != nil {
		return 0, err
	}
	return t.Define(kind, name)
}

// ParseRef splits a "@kind/name" reference into its parts. A leading "@+" is
// accepted as a synonym for "@" (new-ID syntax).
func ParseRef(ref string) (Kind, string, error) {
	s := ref
	switch {
	case strings.HasPrefix(s, "@+"):
		s = s[2:]
	case strings.HasPrefix(s, "@"):
		s = s[1:]
	default:
		return 0, "", fmt.Errorf("res: reference %q does not start with '@'", ref)
	}
	slash := strings.IndexByte(s, '/')
	if slash <= 0 || slash == len(s)-1 {
		return 0, "", fmt.Errorf("res: malformed reference %q, want @kind/name", ref)
	}
	kindName, name := s[:slash], s[slash+1:]
	kind, ok := KindFromName(kindName)
	if !ok {
		return 0, "", fmt.Errorf("res: unknown resource kind %q in %q", kindName, ref)
	}
	return kind, name, nil
}

// Ref renders the entry as a "@kind/name" reference.
func (e Entry) Ref() string {
	return "@" + e.Kind.String() + "/" + e.Name
}

// Entries returns all defined resources sorted by ID. The slice is a copy.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.byID))
	for _, e := range t.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of defined resources.
func (t *Table) Len() int { return len(t.byID) }

// Clone returns a deep copy of the table. The explorer clones tables so that
// per-run definitions (e.g. patched manifests) never leak between runs.
func (t *Table) Clone() *Table {
	nt := NewTable()
	for k, v := range t.byRef {
		nt.byRef[k] = v
	}
	for k, v := range t.byID {
		nt.byID[k] = v
	}
	for k, v := range t.counts {
		nt.counts[k] = v
	}
	return nt
}

// UnresolvedError reports a reference to a resource that is not defined.
type UnresolvedError struct {
	Ref string
}

func (e *UnresolvedError) Error() string {
	return fmt.Sprintf("res: unresolved resource reference %q", e.Ref)
}
