package baseline

import (
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

const pkg = "com.demo.app."

func demoApp(t *testing.T) *apk.App {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func inputs() map[string]string {
	return map[string]string{corpus.InputRef("Login", "Account"): "alice"}
}

func TestActivityExplorerCoverage(t *testing.T) {
	cfg := DefaultActivityConfig()
	cfg.Inputs = inputs()
	app := demoApp(t)
	res, err := ExploreActivities(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, a := range res.VisitedActivities {
		got[a] = true
	}
	// Reachable by clicks or forced start.
	for _, a := range []string{"Main", "Detail", "Login", "Account", "Share", "Secret", "Settings"} {
		if !got[pkg+a] {
			t.Errorf("activity baseline missed %s (visited %v)", a, res.VisitedActivities)
		}
	}
	if res.TestCases == 0 || res.Steps == 0 {
		t.Error("no work recorded")
	}
}

func TestActivityExplorerMissesFragmentOnlyAPIs(t *testing.T) {
	cfg := DefaultActivityConfig()
	cfg.Inputs = inputs()
	res, err := ExploreActivities(demoApp(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	apis := make(map[string]bool)
	for _, u := range res.Collector.Usages() {
		apis[u.API] = true
	}
	// The drawer-hidden Promo fragment and the reflection-only News fragment
	// never execute under the Activity-level tool.
	if apis["media/Camera.startPreview"] {
		t.Error("baseline triggered drawer-hidden Promo fragment API")
	}
	if apis["view/loadUrl"] {
		t.Error("baseline triggered reflection-only News fragment API")
	}
	// Fragments committed on the default path still execute.
	if !apis["internet/inet"] {
		t.Error("baseline should trigger Home's API (committed in onCreate)")
	}
	if !apis["storage/sdcard"] {
		t.Error("baseline should trigger Recent's API (visible tab click)")
	}
}

func TestActivityExplorerNoForcedStart(t *testing.T) {
	cfg := DefaultActivityConfig()
	cfg.UseForcedStart = false
	res, err := ExploreActivities(demoApp(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.VisitedActivities {
		if a == pkg+"Secret" {
			t.Error("Secret visited without forced start")
		}
	}
}

func TestMonkeyDeterminism(t *testing.T) {
	app := demoApp(t)
	r1, err := Monkey(app, MonkeyConfig{Seed: 7, Events: 500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Monkey(demoApp(t), MonkeyConfig{Seed: 7, Events: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.VisitedActivities) != len(r2.VisitedActivities) {
		t.Fatalf("same seed diverged: %v vs %v", r1.VisitedActivities, r2.VisitedActivities)
	}
	for i := range r1.VisitedActivities {
		if r1.VisitedActivities[i] != r2.VisitedActivities[i] {
			t.Fatalf("same seed diverged: %v vs %v", r1.VisitedActivities, r2.VisitedActivities)
		}
	}
}

func TestMonkeyReachesSomethingButNotGates(t *testing.T) {
	res, err := Monkey(demoApp(t), MonkeyConfig{Seed: 42, Events: 1500})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, a := range res.VisitedActivities {
		got[a] = true
	}
	if !got[pkg+"Main"] || !got[pkg+"Detail"] {
		t.Fatalf("monkey failed to leave the entry: %v", res.VisitedActivities)
	}
	// Random text never satisfies the login gate.
	if got[pkg+"Account"] {
		t.Error("monkey passed the input gate with random text")
	}
	// Slide-only drawer activities stay unreachable for random clicking.
	if got[pkg+"Secret"] {
		t.Error("monkey reached a slide-only drawer activity")
	}
}

func TestMonkeyRecoversFromCrashes(t *testing.T) {
	// A crash-prone app: the only transition leads to an activity that
	// crashes on arrival (missing extra is impossible here, so use a spec
	// whose second activity requires an extra that no caller provides).
	spec := &corpus.AppSpec{
		Package: "com.crashy",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true},
			{Name: "Boom", RequiresExtra: "nope"},
		},
		Transition: []corpus.Transition{
			{From: "Main", To: "Boom", Kind: corpus.TransButton},
		},
	}
	// The generator adds put-extra automatically when the target requires
	// one, so strip it from the handler to force the crash.
	app, err := corpus.BuildApp(spec)
	if err != nil {
		t.Fatal(err)
	}
	h := app.Program.Class("com.crashy.Main").Method("onGoBoom")
	var body = h.Body[:0]
	for _, ins := range h.Body {
		if ins.Op != "put-extra" {
			body = append(body, ins)
		}
	}
	h.Body = body
	res, err := Monkey(app, MonkeyConfig{Seed: 3, Events: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Error("expected crashes")
	}
	// The monkey kept running after crashes.
	if res.TestCases != 300 {
		t.Errorf("events = %d", res.TestCases)
	}
}
