package baseline

import (
	"fmt"
	"math/rand"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// MonkeyConfig tunes the random tester.
type MonkeyConfig struct {
	// Seed makes runs reproducible.
	Seed int64
	// Events is the number of injected UI events. Zero means 2000.
	Events int
	// SystemEvents additionally injects broadcasts the app's receivers
	// subscribe to (Dynodroid-style "UI and system events", §IX).
	SystemEvents bool
	// Observer receives the run's structured trace events (nil disables
	// tracing).
	Observer session.Observer
	// Snapshots lets crash/exit restarts restore a memoized launch snapshot
	// instead of re-interpreting the launch; nil disables.
	Snapshots *session.SnapshotMemo
	// Devices sets the in-process device fleet size: values above 1 warm the
	// launch snapshot on a second device so the first crash restart already
	// restores. Results are identical for any fleet size; warming requires
	// Snapshots.
	Devices int
	// SampleCurve enables coverage-curve sampling after every injected
	// event. Off by default: curve samples add trace events, and legacy
	// runs' event streams must stay byte-identical.
	SampleCurve bool
	// Effective restricts curve crediting to the given activity set; nil
	// credits every reached activity.
	Effective map[string]bool
}

// randomWords feed the monkey's text entry; none of them unlock input gates,
// as the paper observes for random strings like "abc".
var randomWords = []string{"abc", "test", "12345", "qwerty", "hello", ""}

// Monkey injects pseudo-random events: clicks on random visible widgets,
// random text, BACK presses, and dialog dismissals, restarting the app after
// crashes or exits. It models Google's Monkey exerciser.
func Monkey(app *apk.App, cfg MonkeyConfig) (*Result, error) {
	if cfg.Events == 0 {
		cfg.Events = 2000
	}
	e := NewMonkeyStrategy(app, cfg)
	out, err := session.Drive(app, e, session.Harness{
		Observer:  cfg.Observer,
		Snapshots: cfg.Snapshots,
		Devices:   cfg.Devices,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		VisitedActivities: out.VisitedActivities,
		Collector:         out.Collector,
		Stats:             out.Stats,
		Curve:             out.Curve,
		Transcript:        out.Transcript,
	}, nil
}

// monkeyEngine is Monkey as a session.Strategy: one run-form proposal
// containing the whole event-injection loop on a long-lived device (random
// testing has no test-case decomposition to expose — the event batch is the
// test case).
type monkeyEngine struct {
	app       *apk.App
	cfg       MonkeyConfig
	s         *session.Session
	fleet     *session.Fleet
	visited   map[string]bool
	launchOps []robotium.Op
	done      bool
}

// NewMonkeyStrategy returns the Monkey exerciser as a session.Strategy,
// ready for session.Drive. Callers should default cfg.Events before
// constructing it (Monkey does).
func NewMonkeyStrategy(app *apk.App, cfg MonkeyConfig) *monkeyEngine {
	return &monkeyEngine{
		app:       app,
		cfg:       cfg,
		visited:   make(map[string]bool),
		launchOps: []robotium.Op{robotium.LaunchMain()},
	}
}

// Name implements session.Strategy.
func (e *monkeyEngine) Name() string { return "monkey" }

// SessionOptions implements session.Strategy: the monkey is event-budgeted,
// not test-case-budgeted, so the session budget stays unlimited and the loop
// bills its event batches itself.
func (e *monkeyEngine) SessionOptions(h session.Harness) session.Options {
	opts := session.Options{Observer: h.Observer}
	if e.cfg.SampleCurve {
		opts.Coverage = e.coverage
	}
	return opts
}

// coverage feeds the optional curve sampler: reached activities within the
// effective set, no fragment crediting.
func (e *monkeyEngine) coverage() (int, int) {
	n := 0
	for a := range e.visited {
		if e.cfg.Effective == nil || e.cfg.Effective[a] {
			n++
		}
	}
	return n, 0
}

// Init binds the run context and hands the launch warm-up to the fleet.
// The monkey's only replayed route is the launch itself, so the fleet
// reduces to a single warming task: interpret the launch on a private device
// and publish its snapshot before the first restart needs it.
func (e *monkeyEngine) Init(ctx *session.DriveContext) error {
	e.s = ctx.Session
	e.fleet = ctx.Fleet
	if e.fleet != nil && e.cfg.Snapshots != nil {
		memo := e.cfg.Snapshots
		e.fleet.Submit(func() {
			w := device.New(e.app, device.Options{})
			if w.LaunchMain() == nil && !w.Crashed() {
				memo.Store(e.app, false, e.launchOps, w)
			}
		})
	}
	return nil
}

// Propose yields the single run-form event loop, then reports done.
func (e *monkeyEngine) Propose() (session.TestCase, bool) {
	if e.done {
		return session.TestCase{}, false
	}
	e.done = true
	return session.TestCase{Run: e.loop}, true
}

// Observe is never called: the monkey makes no script-form proposals.
func (e *monkeyEngine) Observe(session.TestCase, *device.Device, robotium.Result) error {
	return nil
}

// Finish fills the generic outcome with the reached activity set.
func (e *monkeyEngine) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(e.visited)
	return nil
}

// loop is the event-injection loop: every crash or exit restarts the app at
// MAIN/LAUNCHER, and with a memo attached the restart restores the memoized
// launch snapshot instead of re-interpreting the launch. Restore credits the
// same logical steps and re-emits the launch's side effects, so counters and
// observations are identical to a real relaunch.
func (e *monkeyEngine) loop() error {
	app, cfg, s := e.app, e.cfg, e.s
	d := s.NewDevice()
	rng := rand.New(rand.NewSource(cfg.Seed))
	restarts := 0
	restores := 0

	observe := func() {
		if cur, err := d.CurrentActivity(); err == nil && !e.visited[cur] {
			e.visited[cur] = true
			s.Trace(session.Event{Kind: session.KindVisit, Activity: cur,
				Msg: fmt.Sprintf("monkey reached %s", cur)})
		}
	}

	launch := func() error {
		if cfg.Snapshots != nil {
			if snap, n, _ := cfg.Snapshots.LongestPrefix(app, false, e.launchOps); n == len(e.launchOps) {
				if err := d.Restore(snap); err == nil {
					restores++
					return nil
				}
			}
		}
		if err := d.LaunchMain(); err != nil {
			return err
		}
		if cfg.Snapshots != nil && !d.Crashed() {
			cfg.Snapshots.Store(app, false, e.launchOps, d)
		}
		return nil
	}

	if err := launch(); err != nil {
		return fmt.Errorf("baseline: monkey launch: %w", err)
	}
	observe()
	s.SampleCurve()

	// step injects one event. Each event is billed as one test case before
	// it runs, so the optional coverage curve is indexed by events injected
	// so far; with curve sampling off, per-event billing is observably
	// identical to the historical end-of-run batch bill (nothing reads the
	// counter mid-run).
	step := func() error {
		if d.Crashed() || !d.Running() {
			if d.Crashed() {
				s.MarkCrash(d.CrashReason(), robotium.Script{})
			}
			restarts++
			if err := launch(); err != nil {
				return err
			}
			observe()
			return nil
		}
		dump, err := d.Dump()
		if err != nil {
			return nil
		}
		actions := app.Manifest.BroadcastActions()
		switch p := rng.Intn(100); {
		case cfg.SystemEvents && len(actions) > 0 && p < 10: // system event
			_ = d.Broadcast(actions[rng.Intn(len(actions))])
		case p < 70: // random click
			refs := dump.ClickableRefs()
			if len(refs) == 0 {
				_ = d.Back()
				break
			}
			_ = d.Click(refs[rng.Intn(len(refs))])
		case p < 85: // random text
			refs := dump.EditableRefs()
			if len(refs) == 0 {
				break
			}
			_ = d.EnterText(refs[rng.Intn(len(refs))], randomWords[rng.Intn(len(randomWords))])
		case p < 95: // back
			_ = d.Back()
		default: // blank-space click
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
		}
		observe()
		return nil
	}

	for i := 0; i < cfg.Events; i++ {
		s.AddTestCases(1)
		if err := step(); err != nil {
			return err
		}
		s.SampleCurve()
	}

	s.AddSteps(d.Steps())
	if restores > 0 {
		s.AddSnapshot(1, restores, d.RestoredSteps())
	}
	s.Notef("monkey done: %d events, %d crashes, %d restarts", cfg.Events, s.Stats().Crashes, restarts)
	return nil
}
