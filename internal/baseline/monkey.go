package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// MonkeyConfig tunes the random tester.
type MonkeyConfig struct {
	// Seed makes runs reproducible.
	Seed int64
	// Events is the number of injected UI events. Zero means 2000.
	Events int
	// SystemEvents additionally injects broadcasts the app's receivers
	// subscribe to (Dynodroid-style "UI and system events", §IX).
	SystemEvents bool
	// Observer receives the run's structured trace events (nil disables
	// tracing).
	Observer session.Observer
	// Snapshots lets crash/exit restarts restore a memoized launch snapshot
	// instead of re-interpreting the launch; nil disables.
	Snapshots *session.SnapshotMemo
	// Devices sets the in-process device fleet size: values above 1 warm the
	// launch snapshot on a second device so the first crash restart already
	// restores. Results are identical for any fleet size; warming requires
	// Snapshots.
	Devices int
}

// randomWords feed the monkey's text entry; none of them unlock input gates,
// as the paper observes for random strings like "abc".
var randomWords = []string{"abc", "test", "12345", "qwerty", "hello", ""}

// Monkey injects pseudo-random events: clicks on random visible widgets,
// random text, BACK presses, and dialog dismissals, restarting the app after
// crashes or exits. It models Google's Monkey exerciser.
func Monkey(app *apk.App, cfg MonkeyConfig) (*Result, error) {
	if cfg.Events == 0 {
		cfg.Events = 2000
	}
	s := session.New(app, session.Options{Observer: cfg.Observer})
	d := s.NewDevice()
	rng := rand.New(rand.NewSource(cfg.Seed))

	visited := make(map[string]bool)
	restarts := 0
	restores := 0

	observe := func() {
		if cur, err := d.CurrentActivity(); err == nil && !visited[cur] {
			visited[cur] = true
			s.Trace(session.Event{Kind: session.KindVisit, Activity: cur,
				Msg: fmt.Sprintf("monkey reached %s", cur)})
		}
	}

	// The monkey's only replayed route is the launch itself: every crash or
	// exit restarts the app at MAIN/LAUNCHER, so with a memo attached the
	// restart restores the memoized launch snapshot instead of
	// re-interpreting the launch. Restore credits the same logical steps and
	// re-emits the launch's side effects, so counters and observations are
	// identical to a real relaunch.
	launchOps := []robotium.Op{robotium.LaunchMain()}
	if cfg.Devices > 1 && cfg.Snapshots != nil {
		// The monkey's frontier is one prefix deep, so the fleet reduces to a
		// single warming task: interpret the launch on a private device and
		// publish its snapshot before the first restart needs it.
		fleet := session.NewFleet(1)
		memo := cfg.Snapshots
		fleet.Submit(func() {
			w := device.New(app, device.Options{})
			if w.LaunchMain() == nil && !w.Crashed() {
				memo.Store(app, false, launchOps, w)
			}
		})
		defer fleet.Close()
	}
	launch := func() error {
		if cfg.Snapshots != nil {
			if snap, n, _ := cfg.Snapshots.LongestPrefix(app, false, launchOps); n == len(launchOps) {
				if err := d.Restore(snap); err == nil {
					restores++
					return nil
				}
			}
		}
		if err := d.LaunchMain(); err != nil {
			return err
		}
		if cfg.Snapshots != nil && !d.Crashed() {
			cfg.Snapshots.Store(app, false, launchOps, d)
		}
		return nil
	}

	if err := launch(); err != nil {
		return nil, fmt.Errorf("baseline: monkey launch: %w", err)
	}
	observe()

	for i := 0; i < cfg.Events; i++ {
		if d.Crashed() || !d.Running() {
			if d.Crashed() {
				s.MarkCrash(d.CrashReason(), robotium.Script{})
			}
			restarts++
			if err := launch(); err != nil {
				return nil, err
			}
			observe()
			continue
		}
		dump, err := d.Dump()
		if err != nil {
			continue
		}
		actions := app.Manifest.BroadcastActions()
		switch p := rng.Intn(100); {
		case cfg.SystemEvents && len(actions) > 0 && p < 10: // system event
			_ = d.Broadcast(actions[rng.Intn(len(actions))])
		case p < 70: // random click
			refs := dump.ClickableRefs()
			if len(refs) == 0 {
				_ = d.Back()
				break
			}
			_ = d.Click(refs[rng.Intn(len(refs))])
		case p < 85: // random text
			refs := dump.EditableRefs()
			if len(refs) == 0 {
				break
			}
			_ = d.EnterText(refs[rng.Intn(len(refs))], randomWords[rng.Intn(len(randomWords))])
		case p < 95: // back
			_ = d.Back()
		default: // blank-space click
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
		}
		observe()
	}

	var acts []string
	for a := range visited {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	s.AddTestCases(cfg.Events)
	s.AddSteps(d.Steps())
	if restores > 0 {
		s.AddSnapshot(1, restores, d.RestoredSteps())
	}
	s.Notef("monkey done: %d events, %d crashes, %d restarts", cfg.Events, s.Stats().Crashes, restarts)
	return &Result{
		VisitedActivities: acts,
		Collector:         s.Collector(),
		Stats:             s.Stats(),
		Transcript:        s.Transcript(),
	}, nil
}
