package baseline

import (
	"testing"

	"fragdroid/internal/corpus"
)

// eventSpec: an activity reachable ONLY through a broadcast receiver — the
// Dynodroid-style system-event channel.
func eventSpec() *corpus.AppSpec {
	return &corpus.AppSpec{
		Package: "com.sysev",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true},
			{Name: "Detail"},
			{Name: "Panic", Sensitive: []string{"location/getAllProviders"}},
		},
		Transition: []corpus.Transition{
			{From: "Main", To: "Detail", Kind: corpus.TransButton},
		},
		Receivers: []corpus.ReceiverSpec{{
			Name:           "PanicReceiver",
			Actions:        []string{"com.sysev.PANIC"},
			StartsActivity: "Panic",
		}},
	}
}

func TestMonkeySystemEventsReachReceiverActivities(t *testing.T) {
	app, err := corpus.BuildApp(eventSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Without system events, Panic is reachable only via forced start —
	// which Monkey doesn't do — so clicks never reach it.
	plain, err := Monkey(app, MonkeyConfig{Seed: 11, Events: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plain.VisitedActivities {
		if a == "com.sysev.Panic" {
			t.Fatal("plain monkey reached the receiver-only activity")
		}
	}
	// With system events the PANIC broadcast fires eventually and the
	// receiver launches the activity.
	sys, err := Monkey(app, MonkeyConfig{Seed: 11, Events: 800, SystemEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range sys.VisitedActivities {
		if a == "com.sysev.Panic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("system-event monkey missed the receiver activity: %v", sys.VisitedActivities)
	}
	// And its sensitive API is observed only in the system-event run.
	apis := func(r *Result) map[string]bool {
		m := make(map[string]bool)
		for _, u := range r.Collector.Usages() {
			m[u.API] = true
		}
		return m
	}
	if apis(plain)["location/getAllProviders"] {
		t.Error("plain run observed the receiver-gated API")
	}
	if !apis(sys)["location/getAllProviders"] {
		t.Error("system-event run missed the receiver-gated API")
	}
}
