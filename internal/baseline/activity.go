// Package baseline implements the comparison systems of the evaluation:
//
//   - ActivityExplorer: a traditional Activity-level model-based tester in
//     the spirit of TrimDroid/A3E (§IX). It treats each Activity as one
//     fixed UI state: it clicks the widgets visible on first arrival, never
//     re-keys the UI on fragment or visibility changes, and has neither the
//     reflection mechanism nor Fragment-level crediting. Its blind spots —
//     drawer-hidden entries, reflection-only fragments — are exactly the
//     API calls the paper says traditional approaches must miss (≥9.6%).
//
//   - Monkey: seeded random event injection after Google's
//     UI/Application Exerciser Monkey, the paper's Section I strawman.
package baseline

import (
	"fmt"
	"sort"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
)

// Result reports a baseline run. Fragment-level crediting is intentionally
// absent: these tools cannot observe fragments.
type Result struct {
	// VisitedActivities lists reached activity classes, sorted.
	VisitedActivities []string
	// Collector holds the sensitive-API observations.
	Collector *sensitive.Collector
	// Stats carries the session counters (TestCases counts device sessions
	// for ActivityExplorer, injected event batches for Monkey).
	session.Stats
	// Transcript is the run log.
	Transcript []string
}

// ActivityConfig tunes the Activity-level explorer.
type ActivityConfig struct {
	// Inputs is the same analyst input file FragDroid gets (fair play on
	// input gating).
	Inputs map[string]string
	// DefaultInput fills unknown fields.
	DefaultInput string
	// UseForcedStart enables empty-Intent starts of undiscovered activities
	// (A3E-style targeted exploration).
	UseForcedStart bool
	// MaxTestCases bounds device sessions. Zero means 600.
	MaxTestCases int
	// Observer receives the run's structured trace events (nil disables
	// tracing).
	Observer session.Observer
	// Snapshots lets replays resume from memoized route-prefix snapshots;
	// nil disables.
	Snapshots *session.SnapshotMemo
	// Devices sets the in-process device fleet size: values above 1 run
	// Devices-1 warming devices that pre-execute newly discovered activity
	// routes into the shared memo. Results are identical for any fleet
	// size; warming requires Snapshots.
	Devices int
}

// DefaultActivityConfig mirrors the explorer defaults minus fragment powers.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{UseForcedStart: true, DefaultInput: "test123"}
}

type actEngine struct {
	app     *apk.App
	cfg     ActivityConfig
	s       *session.Session
	fleet   *session.Fleet
	visited map[string]robotium.Script
	queue   []string
}

// ExploreActivities runs the Activity-level baseline on a loaded app.
func ExploreActivities(app *apk.App, cfg ActivityConfig) (*Result, error) {
	if cfg.MaxTestCases == 0 {
		cfg.MaxTestCases = 600
	}
	e := &actEngine{
		app:     app,
		cfg:     cfg,
		visited: make(map[string]robotium.Script),
	}
	e.s = session.New(app, session.Options{
		Budget:      cfg.MaxTestCases,
		AutoDismiss: true,
		Observer:    cfg.Observer,
		Snapshots:   cfg.Snapshots,
	})
	if cfg.Devices > 1 && cfg.Snapshots != nil {
		e.fleet = session.NewFleet(cfg.Devices - 1)
	}
	defer e.fleet.Close()
	if err := e.run(); err != nil {
		return nil, err
	}
	var acts []string
	for a := range e.visited {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	return &Result{
		VisitedActivities: acts,
		Collector:         e.s.Collector(),
		Stats:             e.s.Stats(),
		Transcript:        e.s.Transcript(),
	}, nil
}

func (e *actEngine) visit(activity string, route robotium.Script) {
	if _, seen := e.visited[activity]; seen {
		return
	}
	e.visited[activity] = route
	e.queue = append(e.queue, activity)
	e.warmRoute(route)
	e.s.Trace(session.Event{Kind: session.KindVisit, Activity: activity,
		Script: route.Name, Ops: len(route.Ops),
		Msg: fmt.Sprintf("visited activity %s (%d ops)", activity, len(route.Ops))})
}

func (e *actEngine) run() error {
	launch := robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	d, res, _ := e.s.RunScript(launch, session.PurposeLaunch)
	if res.Err != nil {
		return fmt.Errorf("baseline: launch failed: %w", res.Err)
	}
	cur, err := d.CurrentActivity()
	if err != nil {
		return err
	}
	e.visit(cur, launch)

	for {
		progressed := false
		for len(e.queue) > 0 && !e.s.Exhausted() {
			a := e.queue[0]
			e.queue = e.queue[1:]
			e.exploreActivity(a)
			progressed = true
		}
		if e.cfg.UseForcedStart && !e.s.Exhausted() && e.forcedPass() {
			progressed = true
		}
		if !progressed || e.s.Exhausted() {
			return nil
		}
	}
}

// exploreActivity clicks the widgets visible on first arrival, once each.
// The activity is a fixed UI state: no re-dump after clicks that "only"
// change fragments or visibility.
func (e *actEngine) exploreActivity(activity string) {
	route := e.visited[activity]
	d, res, ok := e.s.RunScript(route, session.PurposeReplay)
	if !ok || res.Err != nil {
		return
	}
	if d.HasDialog() {
		_ = d.DismissDialog()
	}
	dump, err := d.Dump()
	if err != nil {
		return
	}
	clickables := dump.ClickableRefs()
	e.s.Notef("activity %s: %d clickable widgets", activity, len(clickables))

	needReplay := false
	for _, ref := range clickables {
		if needReplay {
			var ok bool
			d, res, ok = e.s.RunScript(route, session.PurposeReplay)
			if !ok || res.Err != nil {
				return
			}
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
			needReplay = false
		}
		if cur, err := d.CurrentActivity(); err != nil || cur != activity {
			needReplay = true
			continue
		}
		fillOps := e.fillInputs(d)
		if err := d.Click(ref); err != nil {
			continue
		}
		if d.Crashed() {
			e.s.MarkCrash(d.CrashReason(), robotium.Script{})
			needReplay = true
			continue
		}
		cur, err := d.CurrentActivity()
		if err != nil {
			needReplay = true
			continue
		}
		if cur != activity {
			newRoute := route.Append("reach_"+cur, fillOps...)
			newRoute.Ops = append(newRoute.Ops, robotium.Click(ref))
			e.visit(cur, newRoute)
			needReplay = true
		}
	}
}

// warmRoute hands a newly discovered activity route to the warming fleet: a
// private, monitor-less device executes it through the real script runner
// and publishes the resulting snapshot through the shared memo, so the main
// loop's later replay of the same route restores instead of re-executing.
// The snapshot's journal re-emits through the main session's device on
// restore, so observations happen exactly once, in the right place.
func (e *actEngine) warmRoute(route robotium.Script) {
	if e.fleet == nil || len(route.Ops) == 0 {
		return
	}
	memo := e.cfg.Snapshots
	e.fleet.Submit(func() {
		d := device.New(e.app, device.Options{})
		resume := 0
		if snap, n, _ := memo.LongestPrefix(e.app, true, route.Ops); snap != nil && d.Restore(snap) == nil {
			resume = n
		}
		if resume == len(route.Ops) {
			return
		}
		res := robotium.Run(d, route, robotium.Options{AutoDismiss: true, Resume: resume})
		if res.Err == nil && !res.Crashed {
			memo.Store(e.app, true, route.Ops, d)
		}
	})
}

// fillInputs completes visible fields with provided or default values and
// returns the performed operations so recorded routes can replay them.
func (e *actEngine) fillInputs(d *device.Device) []robotium.Op {
	dump, err := d.Dump()
	if err != nil {
		return nil
	}
	var ops []robotium.Op
	for _, ref := range dump.EditableRefs() {
		val, ok := e.cfg.Inputs[ref]
		if !ok {
			val = e.cfg.DefaultInput
		}
		if val == "" {
			continue
		}
		ev := session.Event{Kind: session.KindInputFill, Ref: ref, Value: val}
		if err := d.EnterText(ref, val); err == nil {
			ops = append(ops, robotium.EnterText(ref, val))
		} else {
			ev.Err = err.Error()
		}
		e.s.Trace(ev)
	}
	return ops
}

// forcedPass force-starts declared activities not yet visited.
func (e *actEngine) forcedPass() bool {
	progressed := false
	for _, a := range e.app.Manifest.ActivityNames() {
		if _, seen := e.visited[a]; seen {
			continue
		}
		if e.s.Exhausted() {
			break
		}
		s := robotium.Script{Name: "force_" + a, Ops: []robotium.Op{robotium.ForceStart(a)}}
		d, res, ok := e.s.RunScript(s, session.PurposeForcedStart)
		if !ok {
			break
		}
		if res.Err != nil {
			e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: a,
				Err: res.Err.Error(),
				Msg: fmt.Sprintf("forced start of %s failed: %v", a, res.Err)})
			continue
		}
		if cur, err := d.CurrentActivity(); err == nil {
			e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: a})
			e.visit(cur, s)
			progressed = true
		}
	}
	return progressed
}
