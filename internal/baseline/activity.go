// Package baseline implements the comparison systems of the evaluation:
//
//   - ActivityExplorer: a traditional Activity-level model-based tester in
//     the spirit of TrimDroid/A3E (§IX). It treats each Activity as one
//     fixed UI state: it clicks the widgets visible on first arrival, never
//     re-keys the UI on fragment or visibility changes, and has neither the
//     reflection mechanism nor Fragment-level crediting. Its blind spots —
//     drawer-hidden entries, reflection-only fragments — are exactly the
//     API calls the paper says traditional approaches must miss (≥9.6%).
//
//   - Monkey: seeded random event injection after Google's
//     UI/Application Exerciser Monkey, the paper's Section I strawman.
package baseline

import (
	"fmt"
	"sort"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
)

// Result reports a baseline run. Fragment-level crediting is intentionally
// absent: these tools cannot observe fragments.
type Result struct {
	// VisitedActivities lists reached activity classes, sorted.
	VisitedActivities []string
	// Collector holds the sensitive-API observations.
	Collector *sensitive.Collector
	// TestCases counts device sessions (ActivityExplorer) or injected event
	// batches (Monkey).
	TestCases int
	// Steps is the accumulated device work.
	Steps int
	// Crashes counts force-closes.
	Crashes int
	// Transcript is the run log.
	Transcript []string
}

// ActivityConfig tunes the Activity-level explorer.
type ActivityConfig struct {
	// Inputs is the same analyst input file FragDroid gets (fair play on
	// input gating).
	Inputs map[string]string
	// DefaultInput fills unknown fields.
	DefaultInput string
	// UseForcedStart enables empty-Intent starts of undiscovered activities
	// (A3E-style targeted exploration).
	UseForcedStart bool
	// MaxTestCases bounds device sessions. Zero means 600.
	MaxTestCases int
}

// DefaultActivityConfig mirrors the explorer defaults minus fragment powers.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{UseForcedStart: true, DefaultInput: "test123"}
}

type actEngine struct {
	app       *apk.App
	cfg       ActivityConfig
	collector *sensitive.Collector
	visited   map[string]robotium.Script
	queue     []string
	testCases int
	steps     int
	crashes   int
	log       []string
}

// ExploreActivities runs the Activity-level baseline on a loaded app.
func ExploreActivities(app *apk.App, cfg ActivityConfig) (*Result, error) {
	if cfg.MaxTestCases == 0 {
		cfg.MaxTestCases = 600
	}
	e := &actEngine{
		app:       app,
		cfg:       cfg,
		collector: sensitive.NewCollector(app.Manifest.Package),
		visited:   make(map[string]robotium.Script),
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	var acts []string
	for a := range e.visited {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	return &Result{
		VisitedActivities: acts,
		Collector:         e.collector,
		TestCases:         e.testCases,
		Steps:             e.steps,
		Crashes:           e.crashes,
		Transcript:        e.log,
	}, nil
}

func (e *actEngine) logf(format string, args ...any) {
	e.log = append(e.log, fmt.Sprintf(format, args...))
}

func (e *actEngine) runScript(s robotium.Script) (*device.Device, robotium.Result, bool) {
	if e.testCases >= e.cfg.MaxTestCases {
		return nil, robotium.Result{}, false
	}
	e.testCases++
	d := device.New(e.app, device.Options{Monitor: func(ev device.SensitiveEvent) {
		e.collector.Observe(sensitive.Event(ev))
	}})
	res := robotium.Run(d, s, robotium.Options{AutoDismiss: true})
	e.steps += d.Steps()
	if res.Crashed {
		e.crashes++
	}
	return d, res, true
}

func (e *actEngine) visit(activity string, route robotium.Script) {
	if _, seen := e.visited[activity]; seen {
		return
	}
	e.visited[activity] = route
	e.queue = append(e.queue, activity)
	e.logf("visited activity %s (%d ops)", activity, len(route.Ops))
}

func (e *actEngine) run() error {
	launch := robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	d, res, _ := e.runScript(launch)
	if res.Err != nil {
		return fmt.Errorf("baseline: launch failed: %w", res.Err)
	}
	cur, err := d.CurrentActivity()
	if err != nil {
		return err
	}
	e.visit(cur, launch)

	for {
		progressed := false
		for len(e.queue) > 0 && e.testCases < e.cfg.MaxTestCases {
			a := e.queue[0]
			e.queue = e.queue[1:]
			e.exploreActivity(a)
			progressed = true
		}
		if e.cfg.UseForcedStart && e.testCases < e.cfg.MaxTestCases && e.forcedPass() {
			progressed = true
		}
		if !progressed || e.testCases >= e.cfg.MaxTestCases {
			return nil
		}
	}
}

// exploreActivity clicks the widgets visible on first arrival, once each.
// The activity is a fixed UI state: no re-dump after clicks that "only"
// change fragments or visibility.
func (e *actEngine) exploreActivity(activity string) {
	route := e.visited[activity]
	d, res, ok := e.runScript(route)
	if !ok || res.Err != nil {
		return
	}
	if d.HasDialog() {
		_ = d.DismissDialog()
	}
	dump, err := d.Dump()
	if err != nil {
		return
	}
	clickables := dump.ClickableRefs()
	e.logf("activity %s: %d clickable widgets", activity, len(clickables))

	needReplay := false
	for _, ref := range clickables {
		if needReplay {
			var ok bool
			d, res, ok = e.runScript(route)
			if !ok || res.Err != nil {
				return
			}
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
			needReplay = false
		}
		if cur, err := d.CurrentActivity(); err != nil || cur != activity {
			needReplay = true
			continue
		}
		fillOps := e.fillInputs(d)
		if err := d.Click(ref); err != nil {
			continue
		}
		if d.Crashed() {
			e.crashes++
			needReplay = true
			continue
		}
		cur, err := d.CurrentActivity()
		if err != nil {
			needReplay = true
			continue
		}
		if cur != activity {
			newRoute := route.Append("reach_"+cur, fillOps...)
			newRoute.Ops = append(newRoute.Ops, robotium.Click(ref))
			e.visit(cur, newRoute)
			needReplay = true
		}
	}
}

// fillInputs completes visible fields with provided or default values and
// returns the performed operations so recorded routes can replay them.
func (e *actEngine) fillInputs(d *device.Device) []robotium.Op {
	dump, err := d.Dump()
	if err != nil {
		return nil
	}
	var ops []robotium.Op
	for _, ref := range dump.EditableRefs() {
		val, ok := e.cfg.Inputs[ref]
		if !ok {
			val = e.cfg.DefaultInput
		}
		if val == "" {
			continue
		}
		if err := d.EnterText(ref, val); err == nil {
			ops = append(ops, robotium.EnterText(ref, val))
		}
	}
	return ops
}

// forcedPass force-starts declared activities not yet visited.
func (e *actEngine) forcedPass() bool {
	progressed := false
	for _, a := range e.app.Manifest.ActivityNames() {
		if _, seen := e.visited[a]; seen {
			continue
		}
		if e.testCases >= e.cfg.MaxTestCases {
			break
		}
		s := robotium.Script{Name: "force_" + a, Ops: []robotium.Op{robotium.ForceStart(a)}}
		d, res, ok := e.runScript(s)
		if !ok {
			break
		}
		if res.Err != nil {
			e.logf("forced start of %s failed: %v", a, res.Err)
			continue
		}
		if cur, err := d.CurrentActivity(); err == nil {
			e.visit(cur, s)
			progressed = true
		}
	}
	return progressed
}
