// Package baseline implements the comparison systems of the evaluation:
//
//   - ActivityExplorer: a traditional Activity-level model-based tester in
//     the spirit of TrimDroid/A3E (§IX). It treats each Activity as one
//     fixed UI state: it clicks the widgets visible on first arrival, never
//     re-keys the UI on fragment or visibility changes, and has neither the
//     reflection mechanism nor Fragment-level crediting. Its blind spots —
//     drawer-hidden entries, reflection-only fragments — are exactly the
//     API calls the paper says traditional approaches must miss (≥9.6%).
//
//   - Monkey: seeded random event injection after Google's
//     UI/Application Exerciser Monkey, the paper's Section I strawman.
package baseline

import (
	"fmt"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
)

// Result reports a baseline run. Fragment-level crediting is intentionally
// absent: these tools cannot observe fragments.
type Result struct {
	// VisitedActivities lists reached activity classes, sorted.
	VisitedActivities []string
	// Collector holds the sensitive-API observations.
	Collector *sensitive.Collector
	// Stats carries the session counters (TestCases counts device sessions
	// for ActivityExplorer, injected event batches for Monkey).
	session.Stats
	// Curve records cumulative coverage after each test case; empty unless
	// the config opted into curve sampling.
	Curve []session.CurvePoint
	// Transcript is the run log.
	Transcript []string
}

// ActivityConfig tunes the Activity-level explorer.
type ActivityConfig struct {
	// Inputs is the same analyst input file FragDroid gets (fair play on
	// input gating).
	Inputs map[string]string
	// DefaultInput fills unknown fields.
	DefaultInput string
	// UseForcedStart enables empty-Intent starts of undiscovered activities
	// (A3E-style targeted exploration).
	UseForcedStart bool
	// MaxTestCases bounds device sessions. Zero means 600.
	MaxTestCases int
	// Observer receives the run's structured trace events (nil disables
	// tracing).
	Observer session.Observer
	// Snapshots lets replays resume from memoized route-prefix snapshots;
	// nil disables.
	Snapshots *session.SnapshotMemo
	// Devices sets the in-process device fleet size: values above 1 run
	// Devices-1 warming devices that pre-execute newly discovered activity
	// routes into the shared memo. Results are identical for any fleet
	// size; warming requires Snapshots.
	Devices int
	// SampleCurve enables coverage-curve sampling after every test case.
	// Off by default: curve samples add trace events, and legacy runs'
	// event streams must stay byte-identical.
	SampleCurve bool
	// Effective restricts curve crediting to the given activity set (the
	// static phase's effective activities, so baseline curves compare
	// against the same denominator as the explorer's). Nil credits every
	// visited activity.
	Effective map[string]bool
}

// DefaultActivityConfig mirrors the explorer defaults minus fragment powers.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{UseForcedStart: true, DefaultInput: "test123"}
}

type actEngine struct {
	app     *apk.App
	cfg     ActivityConfig
	s       *session.Session
	fleet   *session.Fleet
	visited map[string]robotium.Script
	queue   []string
	launch  robotium.Script

	// Propose phase-machine state (same round discipline as the explorer:
	// drain the queue, run the forced pass, repeat until nothing new).
	phase      int
	progressed bool
	launchRan  bool
}

// Propose phases of the activity-level loop.
const (
	actLaunch = iota
	actDrain
	actForced
	actRoundEnd
	actDone
)

// ExploreActivities runs the Activity-level baseline on a loaded app.
func ExploreActivities(app *apk.App, cfg ActivityConfig) (*Result, error) {
	if cfg.MaxTestCases == 0 {
		cfg.MaxTestCases = 600
	}
	e := NewActivityStrategy(app, cfg)
	out, err := session.Drive(app, e, session.Harness{
		Budget:    cfg.MaxTestCases,
		Observer:  cfg.Observer,
		Snapshots: cfg.Snapshots,
		Devices:   cfg.Devices,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		VisitedActivities: out.VisitedActivities,
		Collector:         out.Collector,
		Stats:             out.Stats,
		Curve:             out.Curve,
		Transcript:        out.Transcript,
	}, nil
}

// NewActivityStrategy returns the Activity-level baseline as a
// session.Strategy, ready for session.Drive.
func NewActivityStrategy(app *apk.App, cfg ActivityConfig) *actEngine {
	return &actEngine{
		app:     app,
		cfg:     cfg,
		visited: make(map[string]robotium.Script),
		launch:  robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}},
	}
}

// Name implements session.Strategy.
func (e *actEngine) Name() string { return "activity" }

// SessionOptions implements session.Strategy: auto-dismiss on, no crash
// triage (the baselines count crashes but produce no fault-finding output).
func (e *actEngine) SessionOptions(h session.Harness) session.Options {
	opts := session.Options{
		Budget:      h.Budget,
		AutoDismiss: true,
		Observer:    h.Observer,
		Snapshots:   h.Snapshots,
	}
	if e.cfg.SampleCurve {
		opts.Coverage = e.coverage
	}
	return opts
}

// coverage feeds the optional curve sampler: visited activities within the
// effective set, no fragment crediting (the baseline cannot observe them).
func (e *actEngine) coverage() (int, int) {
	n := 0
	for a := range e.visited {
		if e.cfg.Effective == nil || e.cfg.Effective[a] {
			n++
		}
	}
	return n, 0
}

// Init binds the run context.
func (e *actEngine) Init(ctx *session.DriveContext) error {
	e.s = ctx.Session
	e.fleet = ctx.Fleet
	return nil
}

// Propose drives the launch → drain → forced-pass round loop.
func (e *actEngine) Propose() (session.TestCase, bool) {
	for {
		switch e.phase {
		case actLaunch:
			e.phase = actDrain
			return session.TestCase{Script: e.launch, Purpose: session.PurposeLaunch}, true
		case actDrain:
			if !e.launchRan {
				e.phase = actDone
				return session.TestCase{}, false
			}
			for len(e.queue) > 0 && !e.s.Exhausted() {
				a := e.queue[0]
				e.queue = e.queue[1:]
				e.progressed = true
				return session.TestCase{Run: func() error {
					e.exploreActivity(a)
					return nil
				}}, true
			}
			e.phase = actForced
		case actForced:
			e.phase = actRoundEnd
			if e.cfg.UseForcedStart && !e.s.Exhausted() {
				return session.TestCase{Run: func() error {
					if e.forcedPass() {
						e.progressed = true
					}
					return nil
				}}, true
			}
		case actRoundEnd:
			if !e.progressed || e.s.Exhausted() {
				e.phase = actDone
				return session.TestCase{}, false
			}
			e.progressed = false
			e.phase = actDrain
		default:
			return session.TestCase{}, false
		}
	}
}

// Observe handles the launch — the only script-form proposal this baseline
// makes.
func (e *actEngine) Observe(tc session.TestCase, d *device.Device, res robotium.Result) error {
	e.launchRan = true
	if res.Err != nil {
		return fmt.Errorf("baseline: launch failed: %w", res.Err)
	}
	cur, err := d.CurrentActivity()
	if err != nil {
		return err
	}
	e.visit(cur, tc.Script)
	return nil
}

// Finish fills the generic outcome with the visited activity set.
func (e *actEngine) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(e.visited)
	return nil
}

func (e *actEngine) visit(activity string, route robotium.Script) {
	if _, seen := e.visited[activity]; seen {
		return
	}
	e.visited[activity] = route
	e.queue = append(e.queue, activity)
	e.warmRoute(route)
	e.s.Trace(session.Event{Kind: session.KindVisit, Activity: activity,
		Script: route.Name, Ops: len(route.Ops),
		Msg: fmt.Sprintf("visited activity %s (%d ops)", activity, len(route.Ops))})
}

// exploreActivity clicks the widgets visible on first arrival, once each.
// The activity is a fixed UI state: no re-dump after clicks that "only"
// change fragments or visibility.
func (e *actEngine) exploreActivity(activity string) {
	route := e.visited[activity]
	d, res, ok := e.s.RunScript(route, session.PurposeReplay)
	if !ok || res.Err != nil {
		return
	}
	if d.HasDialog() {
		_ = d.DismissDialog()
	}
	dump, err := d.Dump()
	if err != nil {
		return
	}
	clickables := dump.ClickableRefs()
	e.s.Notef("activity %s: %d clickable widgets", activity, len(clickables))

	needReplay := false
	for _, ref := range clickables {
		if needReplay {
			var ok bool
			d, res, ok = e.s.RunScript(route, session.PurposeReplay)
			if !ok || res.Err != nil {
				return
			}
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
			needReplay = false
		}
		if cur, err := d.CurrentActivity(); err != nil || cur != activity {
			needReplay = true
			continue
		}
		fillOps := e.fillInputs(d)
		if err := d.Click(ref); err != nil {
			continue
		}
		if d.Crashed() {
			e.s.MarkCrash(d.CrashReason(), robotium.Script{})
			needReplay = true
			continue
		}
		cur, err := d.CurrentActivity()
		if err != nil {
			needReplay = true
			continue
		}
		if cur != activity {
			newRoute := route.Append("reach_"+cur, fillOps...)
			newRoute.Ops = append(newRoute.Ops, robotium.Click(ref))
			e.visit(cur, newRoute)
			needReplay = true
		}
	}
}

// warmRoute hands a newly discovered activity route to the warming fleet: a
// private, monitor-less device executes it through the real script runner
// and publishes the resulting snapshot through the shared memo, so the main
// loop's later replay of the same route restores instead of re-executing.
// The snapshot's journal re-emits through the main session's device on
// restore, so observations happen exactly once, in the right place.
func (e *actEngine) warmRoute(route robotium.Script) {
	if e.fleet == nil || len(route.Ops) == 0 {
		return
	}
	memo := e.cfg.Snapshots
	e.fleet.Submit(func() {
		d := device.New(e.app, device.Options{})
		resume := 0
		if snap, n, _ := memo.LongestPrefix(e.app, true, route.Ops); snap != nil && d.Restore(snap) == nil {
			resume = n
		}
		if resume == len(route.Ops) {
			return
		}
		res := robotium.Run(d, route, robotium.Options{AutoDismiss: true, Resume: resume})
		if res.Err == nil && !res.Crashed {
			memo.Store(e.app, true, route.Ops, d)
		}
	})
}

// fillInputs completes visible fields with provided or default values and
// returns the performed operations so recorded routes can replay them.
func (e *actEngine) fillInputs(d *device.Device) []robotium.Op {
	dump, err := d.Dump()
	if err != nil {
		return nil
	}
	var ops []robotium.Op
	for _, ref := range dump.EditableRefs() {
		val, ok := e.cfg.Inputs[ref]
		if !ok {
			val = e.cfg.DefaultInput
		}
		if val == "" {
			continue
		}
		ev := session.Event{Kind: session.KindInputFill, Ref: ref, Value: val}
		if err := d.EnterText(ref, val); err == nil {
			ops = append(ops, robotium.EnterText(ref, val))
		} else {
			ev.Err = err.Error()
		}
		e.s.Trace(ev)
	}
	return ops
}

// forcedPass force-starts declared activities not yet visited.
func (e *actEngine) forcedPass() bool {
	progressed := false
	for _, a := range e.app.Manifest.ActivityNames() {
		if _, seen := e.visited[a]; seen {
			continue
		}
		if e.s.Exhausted() {
			break
		}
		s := robotium.Script{Name: "force_" + a, Ops: []robotium.Op{robotium.ForceStart(a)}}
		d, res, ok := e.s.RunScript(s, session.PurposeForcedStart)
		if !ok {
			break
		}
		if res.Err != nil {
			e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: a,
				Err: res.Err.Error(),
				Msg: fmt.Sprintf("forced start of %s failed: %v", a, res.Err)})
			continue
		}
		if cur, err := d.CurrentActivity(); err == nil {
			e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: a})
			e.visit(cur, s)
			progressed = true
		}
	}
	return progressed
}
