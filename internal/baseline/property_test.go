package baseline

import (
	"fmt"
	"testing"

	"fragdroid/internal/corpus"
)

// Baselines must run cleanly over anything the random generator produces,
// and the Activity-level tool must never "credit" work it cannot observe.
func TestPropertyBaselinesOnRandomApps(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := corpus.RandomSpec(fmt.Sprintf("com.randb.s%d", seed), seed)
			app, err := corpus.BuildApp(spec)
			if err != nil {
				t.Fatalf("build: %v", err)
			}

			act, err := ExploreActivities(app, DefaultActivityConfig())
			if err != nil {
				t.Fatalf("activity explorer: %v", err)
			}
			declared := make(map[string]bool)
			for _, a := range app.Manifest.ActivityNames() {
				declared[a] = true
			}
			for _, a := range act.VisitedActivities {
				if !declared[a] {
					t.Errorf("baseline visited undeclared activity %s", a)
				}
			}
			entry, err := app.Manifest.EntryActivity()
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, a := range act.VisitedActivities {
				if a == entry {
					found = true
				}
			}
			if !found {
				t.Error("baseline missed the entry activity")
			}

			mk, err := Monkey(app, MonkeyConfig{Seed: seed, Events: 300, SystemEvents: true})
			if err != nil {
				t.Fatalf("monkey: %v", err)
			}
			for _, a := range mk.VisitedActivities {
				if !declared[a] {
					t.Errorf("monkey visited undeclared activity %s", a)
				}
			}
		})
	}
}
