package layout

import (
	"strings"
	"testing"

	"fragdroid/internal/res"
)

const mainXML = `<?xml version="1.0"?>
<LinearLayout id="@+id/root">
  <Toolbar id="@+id/toolbar">
    <ImageButton id="@+id/btn_drawer" onClick="onToggleDrawer"/>
  </Toolbar>
  <Button id="@+id/btn_next" text="Next" onClick="onNext"/>
  <TextView id="@+id/title" text="Welcome"/>
  <EditText id="@+id/edit_user" hint="Username"/>
  <FrameLayout id="@+id/container"/>
  <fragment id="@+id/home_frag" class="com.example.HomeFragment"/>
  <DrawerLayout id="@+id/drawer" visible="false">
    <Button id="@+id/menu_wallpapers" text="Wallpapers" onClick="onMenuWallpapers"/>
  </DrawerLayout>
</LinearLayout>
`

func mustParse(t *testing.T) *Layout {
	t.Helper()
	l, err := Parse("activity_main", []byte(mainXML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return l
}

func TestParseTree(t *testing.T) {
	l := mustParse(t)
	if l.Root.Type != TypeLinearLayout {
		t.Fatalf("root type = %s", l.Root.Type)
	}
	if len(l.Root.Children) != 7 {
		t.Fatalf("root children = %d, want 7", len(l.Root.Children))
	}
	ids := l.WidgetIDs()
	want := []string{"@+id/root", "@+id/toolbar", "@+id/btn_drawer", "@+id/btn_next",
		"@+id/title", "@+id/edit_user", "@+id/container", "@+id/home_frag",
		"@+id/drawer", "@+id/menu_wallpapers"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Errorf("id[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestFindAndFlags(t *testing.T) {
	l := mustParse(t)
	btn := l.Find("@+id/btn_next")
	if btn == nil || !btn.Clickable() {
		t.Fatalf("btn_next not found or not clickable: %+v", btn)
	}
	if btn.OnClick != "onNext" {
		t.Errorf("OnClick = %q", btn.OnClick)
	}
	if tv := l.Find("@+id/title"); tv == nil || tv.Clickable() {
		t.Error("plain TextView must not be clickable")
	}
	if et := l.Find("@+id/edit_user"); et == nil || !et.Input() || et.Clickable() {
		t.Error("EditText must be input, not clickable")
	}
	if d := l.Find("@+id/drawer"); d == nil || !d.Hidden {
		t.Error("drawer must be hidden")
	}
	if mb := l.Find("@+id/menu_wallpapers"); mb == nil || !mb.Clickable() {
		t.Error("drawer menu button must be clickable")
	}
}

func TestStaticFragmentsAndContainers(t *testing.T) {
	l := mustParse(t)
	sf := l.StaticFragments()
	if len(sf) != 1 || sf[0] != "com.example.HomeFragment" {
		t.Fatalf("StaticFragments = %v", sf)
	}
	cs := l.Containers()
	if len(cs) != 1 || cs[0] != "@+id/container" {
		t.Fatalf("Containers = %v", cs)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	l := mustParse(t)
	data, err := l.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Parse(l.Name, data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	var origCount, backCount int
	l.Walk(func(*Widget) bool { origCount++; return true })
	back.Walk(func(*Widget) bool { backCount++; return true })
	if origCount != backCount {
		t.Fatalf("widget count %d != %d", origCount, backCount)
	}
	if back.Find("@+id/drawer") == nil || !back.Find("@+id/drawer").Hidden {
		t.Error("Hidden flag lost in round trip")
	}
	if got := back.Find("@+id/home_frag").FragmentClass; got != "com.example.HomeFragment" {
		t.Errorf("fragment class = %q", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"dup ids", `<LinearLayout id="@+id/a"><Button id="@+id/a"/></LinearLayout>`},
		{"bad ref", `<LinearLayout id="id/a"/>`},
		{"fragment no class", `<LinearLayout><fragment id="@+id/f"/></LinearLayout>`},
		{"two roots", `<LinearLayout/><LinearLayout/>`},
		{"garbage", `<<<`},
	}
	for _, tc := range cases {
		if _, err := Parse("l", []byte(tc.xml)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestRegister(t *testing.T) {
	l := mustParse(t)
	tbl := res.NewTable()
	if err := l.Register(tbl); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := tbl.Lookup(res.KindLayout, "activity_main"); !ok {
		t.Error("layout not registered")
	}
	if _, ok := tbl.Lookup(res.KindID, "btn_next"); !ok {
		t.Error("btn_next not registered")
	}
	if got := tbl.Len(); got != 1+len(l.WidgetIDs()) {
		t.Errorf("table len = %d, want %d", got, 1+len(l.WidgetIDs()))
	}
}

func TestBuilder(t *testing.T) {
	l, err := Root(TypeLinearLayout).ID("@id/root").Child(
		Root(TypeButton).ID("@id/go").Text("Go").OnClick("onGo"),
		Root(TypeFrameLayout).ID("@id/c"),
		Root(TypeDrawerLayout).ID("@id/dw").HiddenW().Child(
			Root(TypeButton).ID("@id/m1").OnClick("onM1"),
		),
	).BuildLayout("test")
	if err != nil {
		t.Fatalf("BuildLayout: %v", err)
	}
	if l.Find("@id/go") == nil || !l.Find("@id/dw").Hidden {
		t.Fatal("builder lost structure")
	}
	// Builder output must survive an encode/parse cycle.
	data, err := l.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Parse("test", data); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !strings.Contains(string(data), `onClick="onGo"`) {
		t.Errorf("encoded builder layout missing onClick:\n%s", data)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	l := mustParse(t)
	n := 0
	l.Walk(func(w *Widget) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := mustParse(t)
	cp := l.Clone()
	cp.Find("@+id/btn_next").Text = "mutated"
	if l.Find("@+id/btn_next").Text == "mutated" {
		t.Fatal("Clone shares widgets with original")
	}
}
