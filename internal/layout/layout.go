// Package layout models the res/layout/*.xml files of a synthetic application
// package. A layout is a tree of widgets; Activities and Fragments inflate
// layouts at runtime (device package), and the static phase scans layouts for
// resource IDs, clickable controls, input fields, static <fragment> tags, and
// fragment containers (Algorithm 3, resource dependency).
//
// The XML dialect mirrors the parts of Android layout XML that FragDroid
// cares about: the element name is the widget class, android-style attributes
// are plain attributes (id, text, hint, onClick, visible, class).
package layout

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"fragdroid/internal/res"
)

// Widget type names understood by the toolchain. Unknown names parse fine
// (forward compatibility) but are never clickable or focusable.
const (
	TypeLinearLayout   = "LinearLayout"
	TypeRelativeLayout = "RelativeLayout"
	TypeFrameLayout    = "FrameLayout"
	TypeDrawerLayout   = "DrawerLayout"
	TypeScrollView     = "ScrollView"
	TypeToolbar        = "Toolbar"
	TypeButton         = "Button"
	TypeImageButton    = "ImageButton"
	TypeTextView       = "TextView"
	TypeImageView      = "ImageView"
	TypeEditText       = "EditText"
	TypeCheckBox       = "CheckBox"
	TypeSpinner        = "Spinner"
	TypeListView       = "ListView"
	TypeTabItem        = "TabItem"
	TypeMenuItem       = "MenuItem"
	TypeFragment       = "fragment" // static fragment declaration
)

// Widget is one node of a layout tree.
type Widget struct {
	// Type is the widget class name (element name in XML).
	Type string
	// IDRef is the raw "@id/name" reference, empty if the widget is anonymous.
	IDRef string
	// Text is static display text.
	Text string
	// Hint is the EditText hint.
	Hint string
	// OnClick names the handler method bound in XML (android:onClick).
	OnClick string
	// Hidden marks widgets that are not initially visible (drawer contents,
	// slide menus). Hidden widgets cannot be clicked until revealed.
	Hidden bool
	// FragmentClass is the class of a static <fragment> declaration.
	FragmentClass string
	// Children are nested widgets.
	Children []*Widget
}

// Layout is a named widget tree.
type Layout struct {
	// Name is the layout resource name (file base name, e.g. "activity_main").
	Name string
	// Root is the top of the widget tree.
	Root *Widget

	// idRefs caches IDRefCount's census as count+1 (zero = not computed).
	// Accessed atomically: devices sharing one installed app read layouts
	// concurrently, and the computation is idempotent.
	idRefs int32
}

// IDRefCount returns the number of widgets in the tree carrying an ID
// reference — exactly the number of entries this layout contributes to a UI
// dump. Layouts are immutable once built, so the count is computed on first
// use and cached.
func (l *Layout) IDRefCount() int {
	if v := atomic.LoadInt32(&l.idRefs); v != 0 {
		return int(v - 1)
	}
	var n int32
	l.Walk(func(w *Widget) bool {
		if w.IDRef != "" {
			n++
		}
		return true
	})
	atomic.StoreInt32(&l.idRefs, n+1)
	return int(n)
}

// Clickable reports whether this widget reacts to clicks by itself: it has an
// XML-bound handler or is an inherently clickable control (CheckBoxes toggle
// on click even without a handler). Code-registered listeners are handled by
// the device on top of this.
func (w *Widget) Clickable() bool {
	if w.OnClick != "" {
		return true
	}
	switch w.Type {
	case TypeButton, TypeImageButton, TypeTabItem, TypeMenuItem, TypeCheckBox:
		return true
	}
	return false
}

// Input reports whether the widget accepts typed values (EditText, Spinner)
// — the widget classes the input-dependency file fills with text. CheckBoxes
// are input widgets in the paper's sense too, but they are driven by clicks
// (toggling), not text entry.
func (w *Widget) Input() bool {
	switch w.Type {
	case TypeEditText, TypeSpinner:
		return true
	}
	return false
}

// Container reports whether the widget is a fragment container: a FrameLayout
// with an ID, the target of FragmentTransaction.add/replace.
func (w *Widget) Container() bool {
	return w.Type == TypeFrameLayout && w.IDRef != ""
}

// Walk visits the widget and all descendants in depth-first pre-order,
// stopping early if fn returns false.
func (w *Widget) Walk(fn func(*Widget) bool) bool {
	if w == nil {
		return true
	}
	if !fn(w) {
		return false
	}
	for _, c := range w.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Walk visits every widget of the layout in depth-first pre-order.
func (l *Layout) Walk(fn func(*Widget) bool) {
	if l.Root != nil {
		l.Root.Walk(fn)
	}
}

// WidgetIDs returns the IDRefs of all identified widgets in tree order.
func (l *Layout) WidgetIDs() []string {
	var out []string
	l.Walk(func(w *Widget) bool {
		if w.IDRef != "" {
			out = append(out, w.IDRef)
		}
		return true
	})
	return out
}

// Find returns the first widget whose IDRef equals ref, or nil.
func (l *Layout) Find(ref string) *Widget {
	var found *Widget
	l.Walk(func(w *Widget) bool {
		if w.IDRef == ref {
			found = w
			return false
		}
		return true
	})
	return found
}

// StaticFragments returns the classes declared with <fragment> tags.
func (l *Layout) StaticFragments() []string {
	var out []string
	l.Walk(func(w *Widget) bool {
		if w.Type == TypeFragment && w.FragmentClass != "" {
			out = append(out, w.FragmentClass)
		}
		return true
	})
	return out
}

// Containers returns the IDRefs of all fragment containers.
func (l *Layout) Containers() []string {
	var out []string
	l.Walk(func(w *Widget) bool {
		if w.Container() {
			out = append(out, w.IDRef)
		}
		return true
	})
	return out
}

// Validate checks the layout: a root must exist, IDs must be well-formed
// references, fragment tags must carry a class, and IDs must be unique within
// the layout.
func (l *Layout) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("layout: empty name")
	}
	if l.Root == nil {
		return fmt.Errorf("layout %s: no root widget", l.Name)
	}
	seen := make(map[string]bool)
	var err error
	l.Walk(func(w *Widget) bool {
		if w.Type == "" {
			err = fmt.Errorf("layout %s: widget with empty type", l.Name)
			return false
		}
		if w.IDRef != "" {
			if _, _, e := res.ParseRef(w.IDRef); e != nil {
				err = fmt.Errorf("layout %s: %w", l.Name, e)
				return false
			}
			if seen[w.IDRef] {
				err = fmt.Errorf("layout %s: duplicate widget id %s", l.Name, w.IDRef)
				return false
			}
			seen[w.IDRef] = true
		}
		if w.Type == TypeFragment && w.FragmentClass == "" {
			err = fmt.Errorf("layout %s: <fragment> without class", l.Name)
			return false
		}
		return true
	})
	return err
}

// Register defines every widget ID of the layout (and the layout itself) in
// the resource table, so runtime and static phases agree on numbering.
func (l *Layout) Register(tbl *res.Table) error {
	if _, err := tbl.Define(res.KindLayout, l.Name); err != nil {
		return err
	}
	var err error
	l.Walk(func(w *Widget) bool {
		if w.IDRef == "" {
			return true
		}
		if _, e := tbl.ResolveOrDefine(w.IDRef); e != nil {
			err = fmt.Errorf("layout %s: %w", l.Name, e)
			return false
		}
		return true
	})
	return err
}

// Clone returns a deep copy of the layout tree.
func (l *Layout) Clone() *Layout {
	return &Layout{Name: l.Name, Root: cloneWidget(l.Root)}
}

func cloneWidget(w *Widget) *Widget {
	if w == nil {
		return nil
	}
	cp := *w
	cp.Children = make([]*Widget, len(w.Children))
	for i, c := range w.Children {
		cp.Children[i] = cloneWidget(c)
	}
	return &cp
}

// Parse decodes a layout XML document. name is the layout resource name
// (typically the file base name without extension).
func Parse(name string, data []byte) (*Layout, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var root *Widget
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("layout %s: %w", name, err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if root != nil {
			return nil, fmt.Errorf("layout %s: multiple root elements", name)
		}
		root, err = parseWidget(dec, se)
		if err != nil {
			return nil, fmt.Errorf("layout %s: %w", name, err)
		}
	}
	l := &Layout{Name: name, Root: root}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func parseWidget(dec *xml.Decoder, se xml.StartElement) (*Widget, error) {
	w := &Widget{Type: se.Name.Local}
	for _, a := range se.Attr {
		switch a.Name.Local {
		case "id":
			w.IDRef = a.Value
		case "text":
			w.Text = a.Value
		case "hint":
			w.Hint = a.Value
		case "onClick":
			w.OnClick = a.Value
		case "class", "name":
			w.FragmentClass = a.Value
		case "visible":
			w.Hidden = a.Value == "false" || a.Value == "gone"
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			c, err := parseWidget(dec, t)
			if err != nil {
				return nil, err
			}
			w.Children = append(w.Children, c)
		case xml.EndElement:
			return w, nil
		}
	}
}

// Encode renders the layout back to XML.
func (l *Layout) Encode() ([]byte, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	encodeWidget(&buf, l.Root, 0)
	return buf.Bytes(), nil
}

func encodeWidget(buf *bytes.Buffer, w *Widget, depth int) {
	ind := strings.Repeat("  ", depth)
	buf.WriteString(ind)
	buf.WriteByte('<')
	buf.WriteString(w.Type)
	writeAttr(buf, "id", w.IDRef)
	writeAttr(buf, "text", w.Text)
	writeAttr(buf, "hint", w.Hint)
	writeAttr(buf, "onClick", w.OnClick)
	if w.FragmentClass != "" {
		writeAttr(buf, "class", w.FragmentClass)
	}
	if w.Hidden {
		writeAttr(buf, "visible", "false")
	}
	if len(w.Children) == 0 {
		buf.WriteString("/>\n")
		return
	}
	buf.WriteString(">\n")
	for _, c := range w.Children {
		encodeWidget(buf, c, depth+1)
	}
	buf.WriteString(ind)
	buf.WriteString("</")
	buf.WriteString(w.Type)
	buf.WriteString(">\n")
}

func writeAttr(buf *bytes.Buffer, name, val string) {
	if val == "" {
		return
	}
	buf.WriteByte(' ')
	buf.WriteString(name)
	buf.WriteString(`="`)
	xml.EscapeText(buf, []byte(val))
	buf.WriteByte('"')
}

// B is a tiny fluent builder for layouts used by corpus generators and tests.
type B struct {
	w *Widget
}

// Root starts a builder with a root widget of the given type.
func Root(typ string) *B { return &B{w: &Widget{Type: typ}} }

// ID sets the widget ID reference.
func (b *B) ID(ref string) *B { b.w.IDRef = ref; return b }

// Text sets display text.
func (b *B) Text(s string) *B { b.w.Text = s; return b }

// Hint sets the input hint.
func (b *B) Hint(s string) *B { b.w.Hint = s; return b }

// OnClick binds an XML click handler.
func (b *B) OnClick(m string) *B { b.w.OnClick = m; return b }

// Hidden marks the widget initially invisible.
func (b *B) HiddenW() *B { b.w.Hidden = true; return b }

// Class sets the fragment class for <fragment> widgets.
func (b *B) Class(c string) *B { b.w.FragmentClass = c; return b }

// Child appends child builders.
func (b *B) Child(children ...*B) *B {
	for _, c := range children {
		b.w.Children = append(b.w.Children, c.w)
	}
	return b
}

// BuildLayout finishes the tree into a named, validated layout.
func (b *B) BuildLayout(name string) (*Layout, error) {
	l := &Layout{Name: name, Root: b.w}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l.Clone(), nil
}
