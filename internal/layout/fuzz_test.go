package layout

import "testing"

// FuzzParse: arbitrary XML must never panic, and accepted layouts must
// round-trip through Encode/Parse with the same widget count.
func FuzzParse(f *testing.F) {
	f.Add(`<LinearLayout id="@+id/root"><Button id="@+id/b" onClick="h"/></LinearLayout>`)
	f.Add(`<DrawerLayout id="@+id/d" visible="false"><fragment id="@+id/f" class="p.F"/></DrawerLayout>`)
	f.Add(`<a><b><c/></b></a>`)
	f.Add(`<<<`)
	f.Add(``)
	f.Add(`<LinearLayout id="@+id/a"><Button id="@+id/a"/></LinearLayout>`)
	f.Fuzz(func(t *testing.T, src string) {
		l, err := Parse("fuzz", []byte(src))
		if err != nil {
			return
		}
		data, err := l.Encode()
		if err != nil {
			t.Fatalf("accepted layout fails to encode: %v", err)
		}
		back, err := Parse("fuzz", data)
		if err != nil {
			t.Fatalf("encoded layout rejected: %v\n%s", err, data)
		}
		var n1, n2 int
		l.Walk(func(*Widget) bool { n1++; return true })
		back.Walk(func(*Widget) bool { n2++; return true })
		if n1 != n2 {
			t.Fatalf("widget count changed: %d vs %d", n1, n2)
		}
	})
}
