// Command fragstudy runs the §VII-A dataset study: scan the 217-app corpus
// for Fragment usage and report the share (paper: "nearly 91%"). It also
// regenerates the evaluation tables when asked.
//
// Usage:
//
//	fragstudy                   # the 217-app fragment-usage study
//	fragstudy -parallel 8       # same study, 8 apps analyzed concurrently
//	fragstudy -table1           # the Table I coverage run (15 apps)
//	fragstudy -table2           # the Table II sensitive-operations matrix
//	fragstudy -compare          # FragDroid vs Activity-level MBT vs Monkey
//
// -parallel applies to every mode and defaults to the machine's CPU count;
// results are deterministic and identical to a sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"fragdroid/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fragstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fragstudy", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "study corpus seed")
		parallel = fs.Int("parallel", runtime.NumCPU(), "number of apps analyzed concurrently")
		table1   = fs.Bool("table1", false, "run the Table I coverage evaluation")
		table2   = fs.Bool("table2", false, "run the Table II sensitive-operations evaluation")
		compare  = fs.Bool("compare", false, "run the baseline comparison")
		gap      = fs.Bool("gap", false, "run the static-vs-dynamic sensitive-site comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := report.DefaultEvalConfig()
	cfg.Parallel = *parallel

	if *table1 || *table2 || *gap {
		ev, err := report.RunEvaluation(cfg)
		if err != nil {
			return err
		}
		if *table1 {
			fmt.Println(report.RenderTable1(ev.BuildTable1()))
		}
		if *table2 {
			fmt.Println(report.RenderTable2(ev.BuildTable2()))
		}
		if *gap {
			fmt.Println(report.RenderGap(ev.StaticDynamicGap()))
		}
		return nil
	}
	if *compare {
		cmp, err := report.RunComparison(cfg, 7, 1500)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderComparison(cmp))
		return nil
	}

	res, err := report.RunStudyWith(report.StudyConfig{Seed: *seed, Parallel: *parallel})
	if err != nil {
		return err
	}
	fmt.Println(report.RenderStudy(res))
	return nil
}
