// Command fragstudy runs the §VII-A dataset study: scan the 217-app corpus
// for Fragment usage and report the share (paper: "nearly 91%"). It also
// regenerates the evaluation tables when asked.
//
// Usage:
//
//	fragstudy                   # the 217-app fragment-usage study
//	fragstudy -parallel 8       # same study, 8 apps analyzed concurrently
//	fragstudy -corpus family -n 10000 -stream  # corpus-scale streamed study
//	fragstudy -stream -streamjson s.json       # + throughput/peak-heap record
//	fragstudy -table1           # the Table I coverage run (15 apps)
//	fragstudy -table2           # the Table II sensitive-operations matrix
//	fragstudy -baselines        # FragDroid vs Activity-level MBT vs Monkey
//	fragstudy -compare explorer,monkey,biased  # the strategy bake-off
//	fragstudy -ceiling          # static reachability ceiling vs dynamic visits
//	fragstudy -directed         # gap classification + directed-vs-undirected study
//	fragstudy -directed -directedjson BENCH_PR8.json  # + the JSON bench summary
//	fragstudy -lint             # fraglint across the 217-app dataset
//	fragstudy -table1 -metrics  # + the per-app session counter table
//	fragstudy -table1 -trace t.json  # dump the structured event trace
//	fragstudy -cache off        # disable the persistent artifact store
//
// -compare takes a comma-separated list of strategy names ("all" for every
// registered one) and renders per-strategy coverage-vs-budget with mean and
// variance over -seeds seeds; -budget bounds each run and -comparejson also
// writes the result as JSON. -strategy reruns the table evaluations under a
// different registered engine (Table II and -metrics work for any strategy;
// Table I, -gap and -ceiling are explorer-only).
//
// -corpus selects the dataset corpus behind the default study and -lint:
// "study" is the paper's 217-app dataset, "family" a generated app family of
// -n members (deterministic in -seed). -stream switches either mode to the
// bounded-memory streaming pipeline: at most -window apps are in flight (0
// picks a window from the stage limits), each folds into the aggregate in
// dataset order and is released immediately, so peak heap is O(window), not
// O(corpus) — with results bit-identical to the positional run. -streamjson
// also writes the throughput record (apps/sec, peak heap, host CPUs) in the
// bench-json schema scripts/bench_diff.py understands.
//
// -parallel applies to every mode (it must be at least 1) and defaults to
// the machine's CPU count; results are deterministic and identical to a
// sequential run.
//
// By default built apps and static extractions persist in a content-addressed
// store (FRAGDROID_CACHE, else the user cache dir), so a second run skips
// all builds and static analysis. -cache takes "auto", "off", or a directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/report"
	"fragdroid/internal/session"
	"fragdroid/internal/strategy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fragstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fragstudy", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "study corpus seed")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "number of apps analyzed concurrently")
		corpusSel  = fs.String("corpus", "study", "dataset corpus for the default study and -lint: study (217 apps) or family (generated, -n apps)")
		famN       = fs.Int("n", 10000, "family corpus size (with -corpus family)")
		stream     = fs.Bool("stream", false, "run the study/-lint as a streaming bounded-memory pipeline")
		window     = fs.Int("window", 0, "with -stream: in-flight app window (0 = derive from the stage limits)")
		streamJSON = fs.String("streamjson", "", "with -stream: write the throughput/peak-heap record as bench-json to this file")
		table1     = fs.Bool("table1", false, "run the Table I coverage evaluation")
		table2     = fs.Bool("table2", false, "run the Table II sensitive-operations evaluation")
		baselns    = fs.Bool("baselines", false, "run the FragDroid vs Activity-level MBT vs Monkey comparison")
		compare    = fs.String("compare", "", "run the strategy bake-off over this comma-separated strategy list (\"all\" for every registered strategy)")
		cmpJSON    = fs.String("comparejson", "", "with -compare: also write the bake-off result as JSON to this file")
		budget     = fs.Int("budget", 400, "with -compare: full per-run budget (test cases / events)")
		seeds      = fs.Int("seeds", 3, "with -compare: number of seeds per strategy (base seed is -seed)")
		stratSel   = fs.String("strategy", "explorer", "exploration strategy driving the table evaluations (see internal/strategy)")
		gap        = fs.Bool("gap", false, "run the static-vs-dynamic sensitive-site comparison")
		ceiling    = fs.Bool("ceiling", false, "run the static reachability ceiling vs dynamic confirmation table")
		directed   = fs.Bool("directed", false, "run the directed-vs-undirected targeted study and the gap classification")
		dirJSON    = fs.String("directedjson", "", "with -directed: also write the bench summary as JSON to this file")
		lintRun    = fs.Bool("lint", false, "run fraglint across the dataset and print the summary")
		metrics    = fs.Bool("metrics", false, "with -table1/-table2: also print the per-app run-metrics table")
		snaps      = fs.String("snapshots", "on", "device snapshot memoization for evaluation runs: on, off, or a memo capacity")
		devices    = fs.String("devices", "auto", "in-process device fleet size per app: auto (GOMAXPROCS, capped at 8) or a count")
		trace      = fs.String("trace", "", "write the structured trace events of evaluation runs as JSON to this file (\"-\" for stdout)")
		cacheDir   = fs.String("cache", "auto", "persistent artifact store: auto, off, or a directory")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file after the run")
		interp     = fs.String("interp", device.DefaultInterp(), "interpreter backend for app code: ir (precompiled instruction programs) or classic (tree-walking smali)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", *parallel)
	}
	if *streamJSON != "" && !*stream {
		return fmt.Errorf("-streamjson needs -stream")
	}
	if err := device.SetDefaultInterp(*interp); err != nil {
		return err
	}
	cache, err := openCache(*cacheDir)
	if err != nil {
		return err
	}
	// The study configuration shared by the default study and -lint; -corpus
	// family swaps the 217-app dataset for a lazy generated source.
	scfg := report.StudyConfig{
		Seed: *seed, Parallel: *parallel, Cache: cache,
		Stream: *stream, Window: *window,
	}
	switch *corpusSel {
	case "study":
	case "family":
		if *famN < 1 {
			return fmt.Errorf("-corpus family needs -n >= 1, got %d", *famN)
		}
		scfg.Source = corpus.NewFamily(*famN, *seed)
	default:
		return fmt.Errorf("unknown corpus %q (want study or family)", *corpusSel)
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	memo, err := parseSnapshots(*snaps)
	if err != nil {
		return err
	}
	fleet, err := parseDevices(*devices)
	if err != nil {
		return err
	}

	cfg := report.DefaultEvalConfig()
	cfg.Strategy = *stratSel
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.Cache = cache
	cfg.Snapshots = memo
	cfg.Devices = fleet
	// Evaluation runs persist full-route snapshots whenever the cache is
	// backed by a store, so a repeated table run starts warm across processes.
	cfg.PersistSnapshots = true
	var buf *session.TraceBuffer
	if *trace != "" {
		// One thread-safe buffer sinks the whole (possibly parallel) corpus
		// run; events carry the app package for demultiplexing.
		buf = &session.TraceBuffer{}
		cfg.Explorer.Observer = buf
	}

	if *lintRun {
		s, err := report.RunLintStudy(scfg)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderLintStudy(s))
		return nil
	}
	if *table1 || *table2 || *gap || *ceiling {
		if cfg.Strategy != "explorer" && (*table1 || *gap || *ceiling) {
			return fmt.Errorf("-table1, -gap and -ceiling are explorer-only (got -strategy %s); use -compare for cross-strategy coverage", cfg.Strategy)
		}
		ev, err := report.RunEvaluation(cfg)
		if err != nil {
			return err
		}
		if *table1 {
			fmt.Println(report.RenderTable1(ev.BuildTable1()))
		}
		if *table2 {
			fmt.Println(report.RenderTable2(ev.BuildTable2()))
		}
		if *gap {
			fmt.Println(report.RenderGap(ev.StaticDynamicGap()))
		}
		if *ceiling {
			fmt.Println(report.RenderCeiling(ev.BuildCeiling()))
		}
		if *metrics {
			fmt.Println(report.RenderRunMetrics(ev))
		}
		return writeTrace(*trace, buf)
	}
	if *directed {
		if cfg.Strategy != "explorer" {
			return fmt.Errorf("-directed is explorer-only (got -strategy %s)", cfg.Strategy)
		}
		ev, err := report.RunEvaluation(cfg)
		if err != nil {
			return err
		}
		gc := ev.BuildGapClassification()
		fmt.Println(report.RenderGapClassification(gc))
		study, err := report.RunDirectedStudy(cfg, []int64{*seed, *seed + 1, *seed + 2})
		if err != nil {
			return err
		}
		fmt.Println(report.RenderDirectedStudy(study))
		if *dirJSON != "" {
			data, err := json.MarshalIndent(report.BuildDirectedBench(study, gc), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*dirJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		return writeTrace(*trace, buf)
	}
	if *baselns {
		cmp, err := report.RunComparison(cfg, 7, 1500)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderComparison(cmp))
		return writeTrace(*trace, buf)
	}
	if *compare != "" {
		list := *compare
		if list == "all" {
			list = strings.Join(strategy.Names(), ",")
		}
		names, err := strategy.ParseList(list)
		if err != nil {
			return err
		}
		bo, err := report.RunBakeoff(report.BakeoffConfig{
			Strategies: names,
			Budget:     *budget,
			Seeds:      *seeds,
			BaseSeed:   *seed,
			Parallel:   *parallel,
			Cache:      cache,
		})
		if err != nil {
			return err
		}
		fmt.Println(report.RenderBakeoff(bo))
		if *cmpJSON != "" {
			data, err := bo.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*cmpJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *stream {
		res, st, err := report.RunStudyStreamed(scfg)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderStudy(res))
		fmt.Println(report.RenderStreamStats(st))
		return writeStreamBench(*streamJSON, st)
	}
	res, err := report.RunStudyWith(scfg)
	if err != nil {
		return err
	}
	fmt.Println(report.RenderStudy(res))
	return nil
}

// writeStreamBench writes a streamed run's throughput record in the
// bench-json schema (a "benchmarks" array plus top-level derived numbers) so
// scripts/bench_diff.py can diff and gate it like any other perf record. One
// "op" is one app: ns_per_op is per-app wall time, which stays comparable
// between the checked-in 10k record and a small CI smoke run.
func writeStreamBench(path string, st *report.StreamStats) error {
	if path == "" {
		return nil
	}
	perApp := int64(0)
	if st.Apps > 0 {
		perApp = st.Elapsed.Nanoseconds() / int64(st.Apps)
	}
	record := struct {
		Benchmarks []map[string]any `json:"benchmarks"`
		HostCPUs   int              `json:"host_cpus"`
		AppsPerSec float64          `json:"apps_per_sec"`
		PeakHeap   uint64           `json:"peak_heap_bytes"`
	}{
		Benchmarks: []map[string]any{{
			"name":       "FamilyStudyStream",
			"iterations": st.Apps,
			"ns_per_op":  perApp,
			"window":     st.Window,
			"max_live":   st.MaxLive,
		}},
		HostCPUs:   runtime.GOMAXPROCS(0),
		AppsPerSec: st.AppsPerSec,
		PeakHeap:   st.PeakHeapBytes,
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseSnapshots maps the -snapshots flag to a memo: "on" uses the default
// capacity, "off" disables memoization (every test case re-executes its route
// from scratch, the paper's literal discipline), and a positive integer
// bounds the memo at that many snapshots.
func parseSnapshots(v string) (*session.SnapshotMemo, error) {
	switch v {
	case "on":
		return session.NewSnapshotMemo(0), nil
	case "off":
		return nil, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("-snapshots takes on, off, or a positive capacity, got %q", v)
	}
	return session.NewSnapshotMemo(n), nil
}

// parseDevices maps the -devices flag to a fleet size: "auto" picks
// GOMAXPROCS capped at 8 (the FRAGDROID_DEVICES environment variable, when
// set, overrides "auto"), and a positive integer is used verbatim. One device
// means no fleet — each app's engines run fully sequentially.
func parseDevices(v string) (int, error) {
	if v == "auto" {
		if env := os.Getenv("FRAGDROID_DEVICES"); env != "" {
			v = env
		}
	}
	if v == "auto" {
		n := runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
		return n, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-devices takes auto or a positive device count, got %q", v)
	}
	return n, nil
}

// openCache maps the -cache flag to an artifact cache: "off" yields a plain
// in-memory cache, "auto" the conventional store dir (FRAGDROID_CACHE or the
// user cache dir), anything else a store rooted at that directory.
func openCache(flagVal string) (*artifact.Cache, error) {
	dir, err := artifact.ResolveDir(flagVal)
	if err != nil {
		return nil, err
	}
	return artifact.NewPersistentCache(dir)
}

// startProfiles starts CPU profiling and arranges a heap snapshot, per the
// -cpuprofile/-memprofile flags; the returned stop function finalizes both.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable allocations out of the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// writeTrace dumps the collected structured events as a JSON array; "-"
// writes to stdout. A nil buffer (no -trace flag) is a no-op.
func writeTrace(path string, buf *session.TraceBuffer) error {
	if buf == nil {
		return nil
	}
	data, err := buf.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
