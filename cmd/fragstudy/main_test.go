package main

import "testing"

func TestRunStudy(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-table1", "-table2", "-gap"}); err != nil {
		t.Fatalf("run tables: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-compare"}); err != nil {
		t.Fatalf("run -compare: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag: want error")
	}
}
