package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fragdroid/internal/device"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fragstudy-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestRunStudy(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-table1", "-table2", "-gap"}); err != nil {
		t.Fatalf("run tables: %v", err)
	}
}

func TestRunBaselines(t *testing.T) {
	if err := run([]string{"-baselines"}); err != nil {
		t.Fatalf("run -baselines: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bakeoff.json")
	err := run([]string{"-compare", "explorer,monkey", "-budget", "80",
		"-seeds", "3", "-comparejson", path})
	if err != nil {
		t.Fatalf("run -compare: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bake-off JSON not written: %v", err)
	}
	if !strings.Contains(string(data), `"mean_activity_pct"`) {
		t.Fatal("bake-off JSON missing the coverage curve")
	}
	if err := run([]string{"-compare", "bogus"}); err == nil {
		t.Fatal("-compare bogus: want error")
	}
}

func TestRunStrategySelection(t *testing.T) {
	if err := run([]string{"-table2", "-strategy", "monkey"}); err != nil {
		t.Fatalf("run -table2 -strategy monkey: %v", err)
	}
	if err := run([]string{"-table1", "-strategy", "monkey"}); err == nil {
		t.Fatal("-table1 -strategy monkey: want explorer-only error")
	}
}

// TestRunStreamedStudy drives the streaming surface end to end: a streamed
// family study writes a bench-json throughput record whose shape and numbers
// scripts/bench_diff.py can consume, and a streamed run of the default
// 217-app corpus also succeeds.
func TestRunStreamedStudy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.json")
	err := run([]string{"-corpus", "family", "-n", "40", "-stream",
		"-window", "5", "-cache", "off", "-streamjson", path})
	if err != nil {
		t.Fatalf("run streamed family study: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("stream bench record not written: %v", err)
	}
	var record struct {
		Benchmarks []struct {
			Name       string `json:"name"`
			Iterations int    `json:"iterations"`
			NsPerOp    int64  `json:"ns_per_op"`
			Window     int    `json:"window"`
			MaxLive    int    `json:"max_live"`
		} `json:"benchmarks"`
		HostCPUs   int     `json:"host_cpus"`
		AppsPerSec float64 `json:"apps_per_sec"`
		PeakHeap   uint64  `json:"peak_heap_bytes"`
	}
	if err := json.Unmarshal(data, &record); err != nil {
		t.Fatalf("stream bench record is not valid JSON: %v", err)
	}
	if len(record.Benchmarks) != 1 || record.Benchmarks[0].Name != "FamilyStudyStream" {
		t.Fatalf("bench record shape off: %s", data)
	}
	b := record.Benchmarks[0]
	if b.Iterations != 40 || b.NsPerOp <= 0 || b.Window != 5 || b.MaxLive < 1 || b.MaxLive > 5 {
		t.Errorf("bench row off: %+v", b)
	}
	if record.HostCPUs < 1 || record.AppsPerSec <= 0 || record.PeakHeap == 0 {
		t.Errorf("derived numbers off: cpus=%d apps/sec=%v peak=%d",
			record.HostCPUs, record.AppsPerSec, record.PeakHeap)
	}

	if err := run([]string{"-stream"}); err != nil {
		t.Fatalf("run -stream over the 217-app study: %v", err)
	}
}

// TestRunStreamedLint runs fraglint over a family corpus through the
// streaming fold.
func TestRunStreamedLint(t *testing.T) {
	err := run([]string{"-lint", "-corpus", "family", "-n", "25", "-stream", "-cache", "off"})
	if err != nil {
		t.Fatalf("run streamed family lint: %v", err)
	}
}

// TestRunCorpusFlagValidation pins the flag boundary of the corpus-scale
// surface: unknown corpora, non-positive family sizes and -streamjson
// without -stream are all rejected.
func TestRunCorpusFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-corpus", "bogus"},
		{"-corpus", "family", "-n", "0"},
		{"-streamjson", filepath.Join(t.TempDir(), "s.json")},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag: want error")
	}
}

func TestRunRejectsBadParallel(t *testing.T) {
	for _, v := range []string{"0", "-3"} {
		err := run([]string{"-parallel", v})
		if err == nil {
			t.Fatalf("-parallel %s: want error, got nil", v)
		}
		if !strings.Contains(err.Error(), "-parallel must be at least 1") {
			t.Fatalf("-parallel %s: unhelpful error %q", v, err)
		}
	}
}

func TestRunTableWithMetricsAndTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-table1", "-metrics", "-trace", path}); err != nil {
		t.Fatalf("run -table1 -metrics -trace: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "[") || !strings.Contains(string(data), `"script_run"`) {
		t.Fatal("trace file does not look like a JSON event array")
	}
}

// TestParseDevices pins the -devices contract shared with fragdroid: auto is
// GOMAXPROCS capped at 8, FRAGDROID_DEVICES overrides only auto, and bad
// values error.
func TestParseDevices(t *testing.T) {
	t.Setenv("FRAGDROID_DEVICES", "")
	n, err := parseDevices("auto")
	if err != nil || n < 1 || n > 8 {
		t.Fatalf("parseDevices(auto) = %d, %v; want 1..8", n, err)
	}
	t.Setenv("FRAGDROID_DEVICES", "3")
	if n, err := parseDevices("auto"); err != nil || n != 3 {
		t.Fatalf("env override: parseDevices(auto) = %d, %v; want 3", n, err)
	}
	if n, err := parseDevices("5"); err != nil || n != 5 {
		t.Fatalf("explicit flag beats env: parseDevices(5) = %d, %v", n, err)
	}
	for _, bad := range []string{"0", "-1", "lots"} {
		if _, err := parseDevices(bad); err == nil {
			t.Errorf("parseDevices(%q): want error", bad)
		}
	}
}

// TestRunDevicesFlag drives a table run under an explicit fleet size and
// rejects invalid values at the flag boundary.
func TestRunDevicesFlag(t *testing.T) {
	if err := run([]string{"-table1", "-devices", "2"}); err != nil {
		t.Fatalf("run -table1 -devices 2: %v", err)
	}
	if err := run([]string{"-devices", "0"}); err == nil {
		t.Error("-devices 0: want error")
	}
}

// TestRunProfileFlags drives a study run with -cpuprofile and -memprofile and
// checks that both profiles land on disk as non-empty files — the recipe
// DESIGN.md documents for finding warm-path regressions.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"-table1", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("run -table1 with profiles: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run([]string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x.prof")}); err == nil {
		t.Error("unwritable -cpuprofile path: want error")
	}
}

// TestRunInterpFlag pins the -interp contract: both backends run the study,
// and an unknown backend is rejected at the flag boundary. The default is
// restored afterwards so test order does not leak interpreter state.
func TestRunInterpFlag(t *testing.T) {
	defer device.SetDefaultInterp("ir")
	for _, mode := range []string{"ir", "classic"} {
		if err := run([]string{"-interp", mode}); err != nil {
			t.Fatalf("run -interp %s: %v", mode, err)
		}
		if got := device.DefaultInterp(); got != mode {
			t.Fatalf("DefaultInterp after -interp %s = %s", mode, got)
		}
	}
	if err := run([]string{"-interp", "jit"}); err == nil {
		t.Error("-interp jit: want error")
	}
}
