package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/lint"
	"fragdroid/internal/manifest"
	"fragdroid/internal/smali"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fraglint-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// defectApp assembles a small package seeded with one defect per analyzer
// family the golden test pins: an uncommitted transaction (FL002), a missing
// click handler (FL004), an undeclared intent target (FL006) and an
// unresolved action (FL011).
func defectApp(t *testing.T) *apk.App {
	t.Helper()
	man, err := manifest.NewBuilder("com.defects").
		Launcher("com.defects.Main").Build()
	if err != nil {
		t.Fatal(err)
	}
	root := layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
		Child(layout.Root(layout.TypeFrameLayout).ID("@id/pane")).
		Child(layout.Root(layout.TypeButton).ID("@id/go").Text("go"))
	l, err := root.BuildLayout("activity_main")
	if err != nil {
		t.Fatal(err)
	}
	classes := []*smali.Class{
		{Name: "com.defects.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			{Name: "onCreate", Access: []string{"public"}, Body: []smali.Instr{
				{Op: smali.OpSetContentView, Args: []string{"@layout/activity_main"}},
				{Op: smali.OpSetClickListener, Args: []string{"@id/go", "onGone"}},
				{Op: smali.OpGetFragmentManager},
				{Op: smali.OpBeginTransaction},
				{Op: smali.OpTxnAdd, Args: []string{"@id/pane", "com.defects.HomeFrag"}},
			}},
			{Name: "onJump", Access: []string{"public"}, Body: []smali.Instr{
				{Op: smali.OpNewIntent, Args: []string{"com.defects.Main", "com.defects.Nowhere"}},
				{Op: smali.OpStartActivity},
				{Op: smali.OpNewIntentAction, Args: []string{"com.defects.MISSING"}},
				{Op: smali.OpStartActivity},
			}},
		}},
		{Name: "com.defects.Nowhere", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			{Name: "onCreate", Access: []string{"public"}, Body: []smali.Instr{
				{Op: smali.OpLog, Args: []string{"nowhere"}},
			}},
		}},
		{Name: "com.defects.HomeFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			{Name: "onCreateView", Access: []string{"public"}, Body: []smali.Instr{
				{Op: smali.OpLog, Args: []string{"home"}},
			}},
		}},
	}
	app, err := apk.Assemble(man, []*layout.Layout{l}, classes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// writeSapk packs the app into a temp .sapk the CLI can load.
func writeSapk(t *testing.T, app *apk.App) string {
	t.Helper()
	arch, err := app.Pack()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "defects.sapk")
	if err := os.WriteFile(path, arch.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestGoldenTextOutput(t *testing.T) {
	path := writeSapk(t, defectApp(t))
	stdout, stderr, code := runCLI(t, path)
	if stderr != "" {
		t.Fatalf("stderr: %s", stderr)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (errors present)", code)
	}
	got := strings.ReplaceAll(stdout, path, "defects.sapk")
	want := strings.Join([]string{
		"com.defects: com.defects.Main.onCreate:6: error FL004: set-click-listener names com.defects.Main.onGone which does not exist; a click force-closes with NoSuchMethodException",
		"com.defects: com.defects.Main.onCreate:8: error FL002: begin-transaction is never committed; the fragment never shows",
		"com.defects: com.defects.Main.onJump:13: error FL006: intent target com.defects.Nowhere is not declared in the manifest; the start throws ActivityNotFoundException",
		"com.defects: com.defects.Main.onJump:15: warning FL011: intent action \"com.defects.MISSING\" resolves to no declared activity",
		"fraglint: 4 findings (3 errors, 1 warnings) in 1 apps",
		"",
	}, "\n")
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeSapk(t, defectApp(t))
	stdout, _, code := runCLI(t, "-json", path)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	var ds []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &ds); err != nil {
		t.Fatalf("output is not a diagnostics array: %v\n%s", err, stdout)
	}
	counts := map[string]int{}
	for _, d := range ds {
		if d.App != "com.defects" {
			t.Errorf("diagnostic app = %q, want com.defects", d.App)
		}
		counts[d.Code]++
	}
	for _, code := range []string{"FL002", "FL004", "FL006", "FL011"} {
		if counts[code] == 0 {
			t.Errorf("JSON output missing %s; got %v", code, counts)
		}
	}
}

func TestSeverityThresholdAndExitCodes(t *testing.T) {
	path := writeSapk(t, defectApp(t))

	// Only errors reported: warnings vanish from the output.
	stdout, _, code := runCLI(t, "-severity", "error", path)
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if strings.Contains(stdout, "warning FL") {
		t.Errorf("-severity error still printed warnings:\n%s", stdout)
	}

	// The demo app has a warning-level finding and no errors.
	if _, _, code := runCLI(t, "demo"); code != 1 {
		t.Errorf("demo exit code = %d, want 1", code)
	}
	if _, _, code := runCLI(t, "-severity", "error", "demo"); code != 0 {
		t.Errorf("demo at -severity error: exit code = %d, want 0", code)
	}

	// Operational failures are exit 3.
	if _, _, code := runCLI(t, "no.such.app"); code != 3 {
		t.Errorf("unknown app exit code = %d, want 3", code)
	}
	if _, _, code := runCLI(t, "-severity", "fatal", "demo"); code != 3 {
		t.Errorf("bad severity exit code = %d, want 3", code)
	}
}

func TestListAndBuiltin(t *testing.T) {
	stdout, _, code := runCLI(t, "-list")
	if code != 0 || !strings.Contains(stdout, "demo") {
		t.Fatalf("-list failed (code %d):\n%s", code, stdout)
	}
	// The whole built-in corpus is clean at severity error.
	stdout, _, code = runCLI(t, "-builtin", "-severity", "error")
	if code != 0 {
		t.Fatalf("-builtin -severity error: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "clean") {
		t.Errorf("expected clean summary, got:\n%s", stdout)
	}
}

func TestStudyMode(t *testing.T) {
	stdout, _, code := runCLI(t, "-study", "-parallel", "8", "-severity", "error")
	if code != 0 {
		t.Fatalf("-study at error severity: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FRAGLINT STUDY") || !strings.Contains(stdout, "217 total") {
		t.Errorf("study summary malformed:\n%s", stdout)
	}
}
