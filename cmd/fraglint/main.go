// Command fraglint runs the static diagnostics engine over application
// packages: the whole-program call graph, the reachability fixpoints and the
// FL001–FL012 analyzers, without ever starting a device.
//
// Usage:
//
//	fraglint demo                       # lint one built-in app
//	fraglint ./myapp.sapk com.ebay.mobile
//	fraglint -builtin                   # lint every built-in corpus app
//	fraglint -study -parallel 8         # lint the 217-app dataset study
//	fraglint -severity error -json demo
//
// Exit codes: 0 clean at the chosen severity, 1 worst finding is a warning,
// 2 worst finding is an error, 3 operational failure (bad flag, unreadable
// app).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/lint"
	"fragdroid/internal/report"
	"fragdroid/internal/statics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fraglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit the diagnostics as a JSON array")
		minSev   = fs.String("severity", "info", "report findings at or above this severity (info, warning, error)")
		builtin  = fs.Bool("builtin", false, "lint every built-in corpus app (demo + the Table I corpus)")
		study    = fs.Bool("study", false, "lint the 217-app dataset study and print the summary")
		seed     = fs.Int64("seed", 1, "dataset variant for -study")
		parallel = fs.Int("parallel", 1, "apps analyzed concurrently in -study mode")
		list     = fs.Bool("list", false, "list built-in corpus apps and exit")
		cacheDir = fs.String("cache", "auto", "persistent artifact store: auto, off, or a directory")
	)
	if err := fs.Parse(args); err != nil {
		return 3
	}
	dir, err := artifact.ResolveDir(*cacheDir)
	if err != nil {
		fmt.Fprintln(stderr, "fraglint:", err)
		return 3
	}
	cache, err := artifact.NewPersistentCache(dir)
	if err != nil {
		fmt.Fprintln(stderr, "fraglint:", err)
		return 3
	}
	min, err := lint.ParseSeverity(*minSev)
	if err != nil {
		fmt.Fprintln(stderr, "fraglint:", err)
		return 3
	}
	if *list {
		fmt.Fprintln(stdout, "built-in corpus apps:")
		fmt.Fprintln(stdout, "  demo")
		for _, row := range corpus.PaperRows() {
			fmt.Fprintf(stdout, "  %s\n", row.Package)
		}
		return 0
	}
	if *study {
		s, err := report.RunLintStudy(report.StudyConfig{Seed: *seed, Parallel: *parallel, Cache: cache})
		if err != nil {
			fmt.Fprintln(stderr, "fraglint:", err)
			return 3
		}
		fmt.Fprint(stdout, report.RenderLintStudy(s))
		return exitCode(s.Worst, min)
	}

	targets := fs.Args()
	if *builtin {
		targets = append([]string{"demo"}, packageNames()...)
	}
	if len(targets) == 0 {
		targets = []string{"demo"}
	}

	var all []lint.Diagnostic
	for _, target := range targets {
		ex, err := loadExtraction(cache, target)
		if err != nil {
			fmt.Fprintf(stderr, "fraglint: %s: %v\n", target, err)
			return 3
		}
		all = append(all, lint.Filter(lint.Run(ex), min)...)
	}

	if *jsonOut {
		if all == nil {
			all = []lint.Diagnostic{}
		}
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "fraglint:", err)
			return 3
		}
		fmt.Fprintln(stdout, string(data))
		return exitCode(lint.MaxSeverity(all), min)
	}

	for _, d := range all {
		fmt.Fprintf(stdout, "%s: %s\n", d.App, d)
	}
	errors, warnings := 0, 0
	for _, d := range all {
		switch d.Severity {
		case lint.SeverityError:
			errors++
		case lint.SeverityWarning:
			warnings++
		}
	}
	if len(all) == 0 {
		fmt.Fprintf(stdout, "fraglint: clean (%d apps at severity >= %s)\n", len(targets), min)
	} else {
		fmt.Fprintf(stdout, "fraglint: %d findings (%d errors, %d warnings) in %d apps\n",
			len(all), errors, warnings, len(targets))
	}
	return exitCode(lint.MaxSeverity(all), min)
}

// exitCode grades the run: the worst reported severity picks the code, and
// findings below the reporting threshold never fail the run.
func exitCode(worst, min lint.Severity) int {
	if worst < min {
		return 0
	}
	switch worst {
	case lint.SeverityError:
		return 2
	case lint.SeverityWarning:
		return 1
	}
	return 0
}

func packageNames() []string {
	var out []string
	for _, row := range corpus.PaperRows() {
		out = append(out, row.Package)
	}
	return out
}

// loadExtraction resolves an app argument exactly like cmd/fragdroid — a
// .sapk path, the demo app, or a built-in corpus package — and returns its
// static extraction, via the artifact cache for spec-built corpus apps.
func loadExtraction(cache *artifact.Cache, arg string) (*statics.Extraction, error) {
	if strings.HasSuffix(arg, ".sapk") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		app, err := apk.LoadBytes(data)
		if err != nil {
			return nil, err
		}
		return statics.Extract(app)
	}
	var spec *corpus.AppSpec
	if arg == "demo" || arg == "com.demo.app" {
		spec = corpus.DemoSpec()
	} else {
		for _, row := range corpus.PaperRows() {
			if row.Package == arg {
				spec = corpus.PaperSpec(row)
				break
			}
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("unknown app %q (try -list)", arg)
	}
	return cache.Extraction(spec)
}
