package main

import "testing"

func TestRunStatic(t *testing.T) {
	if err := run([]string{"-app", "demo"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplored(t *testing.T) {
	if err := run([]string{"-app", "demo", "-explored"}); err != nil {
		t.Fatalf("run -explored: %v", err)
	}
}

func TestRunPaperApp(t *testing.T) {
	if err := run([]string{"-app", "au.com.digitalstampede.formula"}); err != nil {
		t.Fatalf("run paper app: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-app", "nope"}); err == nil {
		t.Fatal("unknown app: want error")
	}
}
