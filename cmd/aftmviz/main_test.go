package main

import (
	"os"
	"testing"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "aftmviz-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestRunStatic(t *testing.T) {
	if err := run([]string{"-app", "demo"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplored(t *testing.T) {
	if err := run([]string{"-app", "demo", "-explored"}); err != nil {
		t.Fatalf("run -explored: %v", err)
	}
}

func TestRunPaperApp(t *testing.T) {
	if err := run([]string{"-app", "au.com.digitalstampede.formula"}); err != nil {
		t.Fatalf("run paper app: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-app", "nope"}); err == nil {
		t.Fatal("unknown app: want error")
	}
}
