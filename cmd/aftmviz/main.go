// Command aftmviz renders an app's Activity & Fragment Transition Model as
// Graphviz DOT — the static model by default, or the evolved model with
// visited markings after a full exploration (-explored).
//
// Usage:
//
//	aftmviz -app demo > aftm.dot
//	aftmviz -app com.inditex.zara -explored | dot -Tsvg > aftm.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aftmviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aftmviz", flag.ContinueOnError)
	var (
		appArg   = fs.String("app", "demo", "corpus app name or path to a .sapk archive")
		explored = fs.Bool("explored", false, "run the full exploration and mark visited nodes")
		trace    = fs.String("trace", "", "write the exploration's structured trace as JSON to this file (implies -explored)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := loadApp(*appArg)
	if err != nil {
		return err
	}
	if *explored || *trace != "" {
		cfg := explorer.DefaultConfig()
		var buf *session.TraceBuffer
		if *trace != "" {
			buf = &session.TraceBuffer{}
			cfg.Observer = buf
		}
		res, err := explorer.Explore(app, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Model.DOT(app.Manifest.Package + " (explored)"))
		if buf != nil {
			data, err := buf.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*trace, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	ex, err := statics.Extract(app)
	if err != nil {
		return err
	}
	fmt.Println(ex.Model.DOT(app.Manifest.Package + " (static)"))
	return nil
}

func loadApp(arg string) (*apk.App, error) {
	if strings.HasSuffix(arg, ".sapk") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return apk.LoadBytes(data)
	}
	if arg == "demo" || arg == "com.demo.app" {
		return corpus.BuildApp(corpus.DemoSpec())
	}
	for _, row := range corpus.PaperRows() {
		if row.Package == arg {
			return corpus.BuildApp(corpus.PaperSpec(row))
		}
	}
	return nil, fmt.Errorf("unknown app %q", arg)
}
