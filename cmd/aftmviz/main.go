// Command aftmviz renders an app's Activity & Fragment Transition Model as
// Graphviz DOT — the static model by default, or the evolved model with
// visited markings after a full exploration (-explored).
//
// Usage:
//
//	aftmviz -app demo > aftm.dot
//	aftmviz -app com.inditex.zara -explored | dot -Tsvg > aftm.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aftmviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aftmviz", flag.ContinueOnError)
	var (
		appArg   = fs.String("app", "demo", "corpus app name or path to a .sapk archive")
		explored = fs.Bool("explored", false, "run the full exploration and mark visited nodes")
		trace    = fs.String("trace", "", "write the exploration's structured trace as JSON to this file (implies -explored)")
		cacheDir = fs.String("cache", "auto", "persistent artifact store: auto, off, or a directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := artifact.ResolveDir(*cacheDir)
	if err != nil {
		return err
	}
	cache, err := artifact.NewPersistentCache(dir)
	if err != nil {
		return err
	}
	ex, err := loadExtraction(cache, *appArg)
	if err != nil {
		return err
	}
	if *explored || *trace != "" {
		cfg := explorer.DefaultConfig()
		var buf *session.TraceBuffer
		if *trace != "" {
			buf = &session.TraceBuffer{}
			cfg.Observer = buf
		}
		res, err := explorer.ExploreExtracted(ex, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Model.DOT(ex.App.Manifest.Package + " (explored)"))
		if buf != nil {
			data, err := buf.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*trace, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Println(ex.Model.DOT(ex.App.Manifest.Package + " (static)"))
	return nil
}

// loadExtraction resolves the -app argument to a static extraction, via the
// artifact cache for spec-built corpus apps.
func loadExtraction(cache *artifact.Cache, arg string) (*statics.Extraction, error) {
	if strings.HasSuffix(arg, ".sapk") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		app, err := apk.LoadBytes(data)
		if err != nil {
			return nil, err
		}
		return statics.Extract(app)
	}
	if arg == "demo" || arg == "com.demo.app" {
		return cache.Extraction(corpus.DemoSpec())
	}
	for _, row := range corpus.PaperRows() {
		if row.Package == arg {
			return cache.Extraction(corpus.PaperSpec(row))
		}
	}
	return nil, fmt.Errorf("unknown app %q", arg)
}
