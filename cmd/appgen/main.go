// Command appgen writes the synthetic application corpus to disk as .sapk
// archives: the demo app, the 15 Table I apps, or the 217-app study corpus.
//
// Usage:
//
//	appgen -out ./apps                 # demo + the 15 paper apps
//	appgen -out ./apps -corpus study   # the 217-app study corpus
//	appgen -out ./apps -corpus demo    # just the demo app
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("appgen", flag.ContinueOnError)
	var (
		out   = fs.String("out", "apps", "output directory")
		which = fs.String("corpus", "paper", "which corpus: demo, paper, study")
		seed  = fs.Int64("seed", 1, "seed for the study corpus shapes")
		quiet = fs.Bool("q", false, "suppress per-file output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var specs []*corpus.AppSpec
	switch *which {
	case "demo":
		specs = []*corpus.AppSpec{corpus.DemoSpec()}
	case "paper":
		specs = append(specs, corpus.DemoSpec())
		for _, row := range corpus.PaperRows() {
			specs = append(specs, corpus.PaperSpec(row))
		}
	case "study":
		specs = corpus.StudySpecs(*seed)
	default:
		return fmt.Errorf("unknown corpus %q", *which)
	}

	for _, spec := range specs {
		arch, err := corpus.BuildArchive(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, spec.Package+".sapk")
		if err := writeArchive(arch, path); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("wrote %s (%d entries)\n", path, arch.Len())
		}
	}
	fmt.Printf("%d app archives written to %s\n", len(specs), *out)
	return nil
}

func writeArchive(a *apk.Archive, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := a.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}
