// Command appgen writes the synthetic application corpus to disk as .sapk
// archives: the demo app, the 15 Table I apps, or the 217-app study corpus.
//
// Usage:
//
//	appgen -out ./apps                 # demo + the 15 paper apps
//	appgen -out ./apps -corpus study   # the 217-app study corpus
//	appgen -out ./apps -corpus demo    # just the demo app
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("appgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "apps", "output directory")
		which     = fs.String("corpus", "paper", "which corpus: demo, paper, study")
		seed      = fs.Int64("seed", 1, "seed for the study corpus shapes")
		quiet     = fs.Bool("q", false, "suppress per-file output")
		trace     = fs.String("trace", "", "boot each generated app once and write the launch traces as JSON to this file (\"-\" for stdout)")
		cacheFlag = fs.String("cache", "auto", "persistent artifact store for -trace smoke boots: auto, off, or a directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := artifact.ResolveDir(*cacheFlag)
	if err != nil {
		return err
	}
	cache, err := artifact.NewPersistentCache(dir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var specs []*corpus.AppSpec
	switch *which {
	case "demo":
		specs = []*corpus.AppSpec{corpus.DemoSpec()}
	case "paper":
		specs = append(specs, corpus.DemoSpec())
		for _, row := range corpus.PaperRows() {
			specs = append(specs, corpus.PaperSpec(row))
		}
	case "study":
		specs = corpus.StudySpecs(*seed)
	default:
		return fmt.Errorf("unknown corpus %q", *which)
	}

	var buf *session.TraceBuffer
	if *trace != "" {
		buf = &session.TraceBuffer{}
	}
	for _, spec := range specs {
		arch, err := corpus.BuildArchive(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, spec.Package+".sapk")
		if err := writeArchive(arch, path); err != nil {
			return err
		}
		if buf != nil {
			if err := smokeBoot(cache, spec, buf); err != nil {
				return fmt.Errorf("smoke boot %s: %w", spec.Package, err)
			}
		}
		if !*quiet {
			fmt.Printf("wrote %s (%d entries)\n", path, arch.Len())
		}
	}
	fmt.Printf("%d app archives written to %s\n", len(specs), *out)
	if buf == nil {
		return nil
	}
	data, err := buf.JSON()
	if err != nil {
		return err
	}
	if *trace == "-" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*trace, append(data, '\n'), 0o644)
}

// smokeBoot launches a generated app once in a traced single-test-case
// session — an archive smoke test whose structured events land in buf. The
// booted app comes out of the artifact cache, so a re-run of appgen -trace
// loads the corpus instead of rebuilding it.
func smokeBoot(cache *artifact.Cache, spec *corpus.AppSpec, buf *session.TraceBuffer) error {
	app, err := cache.App(spec)
	if err != nil {
		return err
	}
	s := session.New(app, session.Options{Budget: 1, AutoDismiss: true, Observer: buf})
	launch := robotium.Script{Name: "smoke_launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	_, res, _ := s.RunScript(launch, session.PurposeProbe)
	if res.Err != nil {
		return res.Err
	}
	return nil
}

func writeArchive(a *apk.Archive, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := a.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}
