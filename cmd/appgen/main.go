// Command appgen writes the synthetic application corpus to disk as .sapk
// archives: the demo app, the 15 Table I apps, the 217-app study corpus, or
// an arbitrarily large generated app family.
//
// Usage:
//
//	appgen -out ./apps                        # demo + the 15 paper apps
//	appgen -out ./apps -corpus study          # the 217-app study corpus
//	appgen -out ./apps -corpus demo           # just the demo app
//	appgen -out ./apps -corpus family -n 500  # 500 family apps + manifest JSON
//
// The family corpus is generated lazily from (-n, -seed); alongside the
// archives it writes family_manifest.json recording every member's package,
// archive file and scenario axes (packed, no-fragments, deeplink,
// receiver-entry, popup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("appgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "apps", "output directory")
		which     = fs.String("corpus", "paper", "which corpus: demo, paper, study, family")
		seed      = fs.Int64("seed", 1, "seed for the study/family corpus shapes")
		famN      = fs.Int("n", 100, "family corpus size (with -corpus family)")
		quiet     = fs.Bool("q", false, "suppress per-file output")
		trace     = fs.String("trace", "", "boot each generated app once and write the launch traces as JSON to this file (\"-\" for stdout)")
		cacheFlag = fs.String("cache", "auto", "persistent artifact store for -trace smoke boots: auto, off, or a directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := artifact.ResolveDir(*cacheFlag)
	if err != nil {
		return err
	}
	cache, err := artifact.NewPersistentCache(dir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	// The corpus is a lazy source, so the family case generates each spec as
	// it is written instead of materializing -n specs up front.
	var src corpus.SpecSource
	var fam *corpus.Family
	switch *which {
	case "demo":
		src = corpus.SliceSource{corpus.DemoSpec()}
	case "paper":
		specs := []*corpus.AppSpec{corpus.DemoSpec()}
		for _, row := range corpus.PaperRows() {
			specs = append(specs, corpus.PaperSpec(row))
		}
		src = corpus.SliceSource(specs)
	case "study":
		src = corpus.SliceSource(corpus.StudySpecs(*seed))
	case "family":
		if *famN < 1 {
			return fmt.Errorf("-corpus family needs -n >= 1, got %d", *famN)
		}
		fam = corpus.NewFamily(*famN, *seed)
		src = fam
	default:
		return fmt.Errorf("unknown corpus %q", *which)
	}

	var buf *session.TraceBuffer
	if *trace != "" {
		buf = &session.TraceBuffer{}
	}
	var manifest *familyManifest
	if fam != nil {
		manifest = &familyManifest{Corpus: "family", N: *famN, Seed: *seed}
	}
	for i := 0; i < src.Len(); i++ {
		spec := src.At(i)
		arch, err := corpus.BuildArchive(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, spec.Package+".sapk")
		if err := writeArchive(arch, path); err != nil {
			return err
		}
		if manifest != nil {
			manifest.Apps = append(manifest.Apps, familyManifestApp{
				Package: spec.Package,
				File:    filepath.Base(path),
				Axes:    fam.Axes(i),
			})
		}
		if buf != nil {
			if err := smokeBoot(cache, spec, buf); err != nil {
				return fmt.Errorf("smoke boot %s: %w", spec.Package, err)
			}
		}
		if !*quiet {
			fmt.Printf("wrote %s (%d entries)\n", path, arch.Len())
		}
	}
	if manifest != nil {
		path := filepath.Join(*out, "family_manifest.json")
		data, err := json.MarshalIndent(manifest, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("wrote %s (%d apps)\n", path, len(manifest.Apps))
		}
	}
	fmt.Printf("%d app archives written to %s\n", src.Len(), *out)
	if buf == nil {
		return nil
	}
	data, err := buf.JSON()
	if err != nil {
		return err
	}
	if *trace == "-" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*trace, append(data, '\n'), 0o644)
}

// familyManifest is the JSON sidecar written next to a generated family:
// the generation parameters plus, per member, its package, archive file and
// scenario axes — enough for downstream tooling to select apps by axis
// without re-deriving the generator's assignment.
type familyManifest struct {
	Corpus string              `json:"corpus"`
	N      int                 `json:"n"`
	Seed   int64               `json:"seed"`
	Apps   []familyManifestApp `json:"apps"`
}

type familyManifestApp struct {
	Package string   `json:"package"`
	File    string   `json:"file"`
	Axes    []string `json:"axes,omitempty"`
}

// smokeBoot launches a generated app once in a traced single-test-case
// session — an archive smoke test whose structured events land in buf. The
// booted app comes out of the artifact cache, so a re-run of appgen -trace
// loads the corpus instead of rebuilding it.
func smokeBoot(cache *artifact.Cache, spec *corpus.AppSpec, buf *session.TraceBuffer) error {
	app, err := cache.App(spec)
	if err != nil {
		return err
	}
	s := session.New(app, session.Options{Budget: 1, AutoDismiss: true, Observer: buf})
	launch := robotium.Script{Name: "smoke_launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	_, res, _ := s.RunScript(launch, session.PurposeProbe)
	if res.Err != nil {
		return res.Err
	}
	return nil
}

func writeArchive(a *apk.Archive, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := a.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}
