package main

import (
	"os"
	"path/filepath"
	"testing"

	"fragdroid/internal/apk"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "appgen-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestRunPaperCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-q"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 { // demo + 15 paper apps
		t.Fatalf("wrote %d files, want 16", len(entries))
	}
	// Every emitted archive loads through the real pipeline.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := apk.LoadBytes(data); err != nil {
			t.Errorf("%s does not load: %v", e.Name(), err)
		}
	}
}

func TestRunDemoCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-corpus", "demo", "-q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "com.demo.app.sapk")); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-corpus", "study", "-q"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 217 {
		t.Fatalf("wrote %d study archives, want 217", len(entries))
	}
}

func TestRunUnknownCorpus(t *testing.T) {
	if err := run([]string{"-corpus", "bogus", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown corpus: want error")
	}
}
