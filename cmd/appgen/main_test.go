package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "appgen-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestRunPaperCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-q"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 { // demo + 15 paper apps
		t.Fatalf("wrote %d files, want 16", len(entries))
	}
	// Every emitted archive loads through the real pipeline.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := apk.LoadBytes(data); err != nil {
			t.Errorf("%s does not load: %v", e.Name(), err)
		}
	}
}

func TestRunDemoCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-corpus", "demo", "-q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "com.demo.app.sapk")); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-corpus", "study", "-q"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 217 {
		t.Fatalf("wrote %d study archives, want 217", len(entries))
	}
}

// TestRunFamilyCorpus drives -corpus family end to end: N archives land on
// disk, every one loads through the real pipeline, and the manifest JSON
// names each member with its axes, consistent with the generator.
func TestRunFamilyCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-corpus", "family", "-n", "30", "-seed", "7", "-q"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "family_manifest.json"))
	if err != nil {
		t.Fatalf("family manifest not written: %v", err)
	}
	var manifest struct {
		Corpus string `json:"corpus"`
		N      int    `json:"n"`
		Seed   int64  `json:"seed"`
		Apps   []struct {
			Package string   `json:"package"`
			File    string   `json:"file"`
			Axes    []string `json:"axes"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if manifest.Corpus != "family" || manifest.N != 30 || manifest.Seed != 7 || len(manifest.Apps) != 30 {
		t.Fatalf("manifest header off: %+v", manifest)
	}
	fam := corpus.NewFamily(30, 7)
	axisSeen := false
	for i, a := range manifest.Apps {
		if want := fam.At(i).Package; a.Package != want {
			t.Fatalf("manifest app %d is %s, want %s", i, a.Package, want)
		}
		if !reflect.DeepEqual(a.Axes, fam.Axes(i)) {
			t.Fatalf("manifest axes of %s = %v, want %v", a.Package, a.Axes, fam.Axes(i))
		}
		if len(a.Axes) > 0 {
			axisSeen = true
		}
		archive, err := os.ReadFile(filepath.Join(dir, a.File))
		if err != nil {
			t.Fatalf("archive %s missing: %v", a.File, err)
		}
		if _, err := apk.LoadBytes(archive); err != nil {
			t.Errorf("%s does not load: %v", a.File, err)
		}
	}
	if !axisSeen {
		t.Error("no manifest entry carries an axis; generator axes not recorded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 31 { // 30 archives + the manifest
		t.Fatalf("wrote %d files, want 31", len(entries))
	}

	if err := run([]string{"-out", t.TempDir(), "-corpus", "family", "-n", "0"}); err == nil {
		t.Error("-corpus family -n 0: want error")
	}
}

func TestRunUnknownCorpus(t *testing.T) {
	if err := run([]string{"-corpus", "bogus", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown corpus: want error")
	}
}
