// Command fragdroid runs the full FragDroid pipeline — static extraction and
// evolutionary UI exploration — on one synthetic application package and
// reports coverage and sensitive-API findings.
//
// Usage:
//
//	fragdroid -app com.adobe.reader            # a built-in corpus app
//	fragdroid -app ./myapp.sapk                # an app archive on disk
//	fragdroid -app demo -inputs inputs.json    # with an analyst input file
//	fragdroid -app demo -strategy biased -seed 11  # a registry strategy
//	fragdroid -app demo -target location/getProviders -directed  # path-guided
//	fragdroid -list                            # list built-in corpus apps
//
// Built-in corpus apps and their static extractions persist in the artifact
// store by default (-cache auto); a repeated run on the same app skips the
// build and static analysis. -cache takes "auto", "off", or a directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/explorer"
	"fragdroid/internal/jdcore"
	"fragdroid/internal/report"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
	"fragdroid/internal/strategy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fragdroid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fragdroid", flag.ContinueOnError)
	var (
		appArg       = fs.String("app", "demo", "corpus app name, package, or path to a .sapk archive")
		list         = fs.Bool("list", false, "list built-in corpus apps and exit")
		inputsPath   = fs.String("inputs", "", "filled-in input dependency JSON file")
		noReflection = fs.Bool("no-reflection", false, "disable the reflective fragment switch")
		noForced     = fs.Bool("no-forced-start", false, "disable forced empty-Intent starts")
		maxCases     = fs.Int("max-cases", 2000, "test case budget")
		stratSel     = fs.String("strategy", "explorer", "exploration strategy: "+strings.Join(strategy.Names(), ", "))
		seed         = fs.Int64("seed", 7, "RNG seed for randomized strategies (monkey, biased); deterministic ones ignore it")
		verbose      = fs.Bool("v", false, "print the exploration transcript")
		emitMeta     = fs.Bool("meta", false, "print the static-phase metadata JSON and exit")
		emitJava     = fs.Bool("java", false, "print the jd-core style Java reconstruction and exit")
		emitTests    = fs.String("emit-tests", "", "write the generated Robotium test programs (and build.xml) to this directory")
		markdown     = fs.Bool("md", false, "print a markdown report instead of the plain summary")
		curveCSV     = fs.Bool("curve", false, "append the coverage-vs-test-case curve as CSV")
		runTest      = fs.String("run-test", "", "execute a stored test-case JSON file on the app and exit")
		target       = fs.String("target", "", "targeted mode: drive the app until this sensitive API fires (e.g. location/getProviders)")
		directed     = fs.Bool("directed", false, "with -target: seed the search with lifted launcher-to-site routes (skips unreachable targets)")
		snapshots    = fs.String("snapshots", "on", "device snapshot memoization: on, off, or a memo capacity")
		devices      = fs.String("devices", "auto", "in-process device fleet size: auto (GOMAXPROCS, capped at 8) or a count")
		tracePath    = fs.String("trace", "", "write the structured trace events as JSON to this file (\"-\" for stdout)")
		cacheDir     = fs.String("cache", "auto", "persistent artifact store: auto, off, or a directory")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf      = fs.String("memprofile", "", "write a heap profile to this file after the run")
		interp       = fs.String("interp", device.DefaultInterp(), "interpreter backend for app code: ir (precompiled instruction programs) or classic (tree-walking smali)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := device.SetDefaultInterp(*interp); err != nil {
		return err
	}
	dir, err := artifact.ResolveDir(*cacheDir)
	if err != nil {
		return err
	}
	cache, err := artifact.NewPersistentCache(dir)
	if err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	if *list {
		fmt.Println("built-in corpus apps:")
		fmt.Println("  demo")
		for _, row := range corpus.PaperRows() {
			fmt.Printf("  %s\n", row.Package)
		}
		return nil
	}

	app, spec, err := loadApp(cache, *appArg)
	if err != nil {
		return err
	}
	// extract resolves the app's static extraction — through the artifact
	// cache for corpus apps (spec-keyed), directly for .sapk archives.
	extract := func() (*statics.Extraction, error) {
		if spec != nil {
			return cache.Extraction(spec)
		}
		return statics.Extract(app)
	}

	if *emitMeta {
		ex, err := extract()
		if err != nil {
			return err
		}
		data, err := ex.MetaJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if *emitJava {
		jp := jdcore.Decompile(app.Program)
		for _, name := range jp.Names() {
			fmt.Println(jdcore.RenderJava(jp.Class(name)))
		}
		return nil
	}
	var trace *session.TraceBuffer
	if *tracePath != "" {
		trace = &session.TraceBuffer{}
	}

	if *runTest != "" {
		if err := replayTest(app, *runTest, trace); err != nil {
			return err
		}
		return writeTrace(*tracePath, trace)
	}

	memo, err := parseSnapshots(*snapshots)
	if err != nil {
		return err
	}
	fleet, err := parseDevices(*devices)
	if err != nil {
		return err
	}
	// With both a memo and a persistent store in play, full-route snapshots
	// survive the process: the next run on the same app resumes warm. The
	// deferred flush writes the app's snapshot packs on every exit path.
	if memo != nil {
		if st := cache.Store(); st != nil {
			memo.AttachStore(st)
			defer memo.Flush()
		}
	}

	cfg := explorer.DefaultConfig()
	cfg.UseReflection = !*noReflection
	cfg.UseForcedStart = !*noForced
	cfg.MaxTestCases = *maxCases
	cfg.Snapshots = memo
	cfg.Devices = fleet
	if trace != nil {
		cfg.Observer = trace
	}
	if *inputsPath != "" {
		data, err := os.ReadFile(*inputsPath)
		if err != nil {
			return err
		}
		vals, err := statics.ParseInputValues(data)
		if err != nil {
			return err
		}
		cfg.Inputs = vals
	}

	if *target != "" {
		ex, err := extract()
		if err != nil {
			return err
		}
		explore := explorer.ExploreTarget
		if *directed {
			explore = explorer.ExploreTargetDirected
		}
		tr, err := explore(ex, cfg, *target)
		if err != nil {
			return err
		}
		printTargetResult(tr)
		return writeTrace(*tracePath, trace)
	}

	ex, err := extract()
	if err != nil {
		return err
	}
	if *stratSel != "explorer" {
		opts := strategy.Options{
			Budget:    *maxCases,
			Seed:      *seed,
			Inputs:    cfg.Inputs,
			Snapshots: memo,
			Devices:   fleet,
			Curve:     true,
		}
		if trace != nil {
			opts.Observer = trace
		}
		out, err := strategy.Run(*stratSel, ex, opts)
		if err != nil {
			return err
		}
		printOutcome(app.Manifest.Package, out, ex, *verbose)
		if *curveCSV {
			fmt.Println("\ntest_case,activities,fragments")
			for _, p := range out.Curve {
				fmt.Printf("%d,%d,%d\n", p.TestCase, p.Activities, p.Fragments)
			}
		}
		return writeTrace(*tracePath, trace)
	}
	res, err := explorer.ExploreExtracted(ex, cfg)
	if err != nil {
		return err
	}
	if *markdown {
		fmt.Print(report.RenderAppReport(app.Manifest.Package, res))
	} else {
		printResult(app.Manifest.Package, res, *verbose)
	}
	if *emitTests != "" {
		if err := writeTestPrograms(*emitTests, app.Manifest.Package, res); err != nil {
			return err
		}
	}
	if *curveCSV {
		fmt.Println("\ntest_case,activities,fragments")
		for _, p := range res.Curve {
			fmt.Printf("%d,%d,%d\n", p.TestCase, p.Activities, p.Fragments)
		}
	}
	return writeTrace(*tracePath, trace)
}

// parseSnapshots maps the -snapshots flag to a memo: "on" uses the default
// capacity, "off" disables memoization (every test case re-executes its route
// from scratch, the paper's literal discipline), and a positive integer
// bounds the memo at that many snapshots.
func parseSnapshots(v string) (*session.SnapshotMemo, error) {
	switch v {
	case "on":
		return session.NewSnapshotMemo(0), nil
	case "off":
		return nil, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("-snapshots takes on, off, or a positive capacity, got %q", v)
	}
	return session.NewSnapshotMemo(n), nil
}

// parseDevices maps the -devices flag to a fleet size: "auto" picks
// GOMAXPROCS capped at 8 (the FRAGDROID_DEVICES environment variable, when
// set, overrides "auto"), and a positive integer is used verbatim. One device
// means no fleet — the exploration runs fully sequentially.
func parseDevices(v string) (int, error) {
	if v == "auto" {
		if env := os.Getenv("FRAGDROID_DEVICES"); env != "" {
			v = env
		}
	}
	if v == "auto" {
		n := runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
		return n, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-devices takes auto or a positive device count, got %q", v)
	}
	return n, nil
}

// writeTrace dumps the collected structured events as a JSON array; "-"
// writes to stdout. A nil buffer (no -trace flag) is a no-op.
func writeTrace(path string, buf *session.TraceBuffer) error {
	if buf == nil {
		return nil
	}
	data, err := buf.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// replayTest loads a stored test-case JSON file and executes it as one
// session test case on a fresh device, reporting the landing state.
func replayTest(app *apk.App, path string, trace *session.TraceBuffer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	script, err := robotium.ParseScript(data)
	if err != nil {
		return err
	}
	opts := session.Options{AutoDismiss: true}
	if trace != nil {
		// Assign only a non-nil buffer: a nil *TraceBuffer in the interface
		// field would read as an attached observer.
		opts.Observer = trace
	}
	s := session.New(app, opts)
	d, res, _ := s.RunScript(script, session.PurposeProbe)
	fmt.Printf("executed %d/%d ops\n", res.Executed, len(script.Ops))
	if res.Err != nil {
		return fmt.Errorf("test failed at %q: %w", res.FailedOp, res.Err)
	}
	dump, err := d.Dump()
	if err != nil {
		return err
	}
	fmt.Printf("landed on %s", dump.Activity)
	if len(dump.FMFragments) > 0 {
		fmt.Printf(" with fragments %s", strings.Join(dump.FMFragments, ", "))
	}
	fmt.Println()
	return nil
}

// writeTestPrograms dumps the generated Robotium test programs (both the
// Java render and the replayable JSON) plus an Ant build file, mirroring the
// paper's packaging step.
func writeTestPrograms(dir, pkg string, res *explorer.Result) error {
	src := filepath.Join(dir, "src")
	if err := os.MkdirAll(src, 0o755); err != nil {
		return err
	}
	programs := res.TestPrograms()
	for _, p := range programs {
		if err := os.WriteFile(filepath.Join(src, p.Name+".java"), []byte(p.Java), 0o644); err != nil {
			return err
		}
		data, err := json.MarshalIndent(p.Script, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(src, p.Name+".json"), data, 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "build.xml"),
		[]byte(explorer.BuildXML(pkg, programs)), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d test programs and build.xml to %s\n", len(programs), dir)
	return nil
}

// loadApp resolves the -app argument to a loaded bundle. Built-in corpus
// apps come back with their generating spec and flow through the artifact
// cache; archives on disk are parsed directly (spec is nil).
func loadApp(cache *artifact.Cache, arg string) (*apk.App, *corpus.AppSpec, error) {
	if strings.HasSuffix(arg, ".sapk") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, err
		}
		app, err := apk.LoadBytes(data)
		return app, nil, err
	}
	var spec *corpus.AppSpec
	if arg == "demo" || arg == "com.demo.app" {
		spec = corpus.DemoSpec()
	} else {
		for _, row := range corpus.PaperRows() {
			if row.Package == arg {
				spec = corpus.PaperSpec(row)
				break
			}
		}
	}
	if spec == nil {
		return nil, nil, fmt.Errorf("unknown app %q (try -list)", arg)
	}
	app, err := cache.App(spec)
	return app, spec, err
}

// startProfiles starts CPU profiling and arranges a heap snapshot, per the
// -cpuprofile/-memprofile flags; the returned stop function finalizes both.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable allocations out of the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// printOutcome summarizes a registry-strategy run: the engine-independent
// coverage, work and sensitive-API findings.
func printOutcome(pkg string, out *session.Outcome, ex *statics.Extraction, verbose bool) {
	va, sa := len(out.VisitedActivities), len(ex.EffectiveActivities)
	vf, sf := len(out.VisitedFragments), len(ex.EffectiveFragments)
	fmt.Printf("package: %s\n", pkg)
	fmt.Printf("strategy: %s\n", out.Strategy)
	fmt.Printf("activities: %d/%d visited (%.2f%%)\n", va, sa, pct(va, sa))
	fmt.Printf("fragments:  %d/%d visited (%.2f%%)\n", vf, sf, pct(vf, sf))
	fmt.Printf("test cases: %d   device steps: %d   crashes: %d\n",
		out.Stats.TestCases, out.Stats.Steps, out.Stats.Crashes)
	if us := out.Collector.Usages(); len(us) > 0 {
		fmt.Println("\nsensitive APIs:")
		for _, u := range us {
			fmt.Printf("  [%s] %-48s %s\n", u.Mark().ASCII(), u.API, strings.Join(u.Classes, ", "))
		}
	}
	if verbose {
		fmt.Println("\ntranscript:")
		for _, line := range out.Transcript {
			fmt.Println("  " + line)
		}
	}
}

func printResult(pkg string, res *explorer.Result, verbose bool) {
	ex := res.Extraction
	va, sa := len(res.VisitedActivities()), len(ex.EffectiveActivities)
	vf, sf := len(res.VisitedFragments()), len(ex.EffectiveFragments)
	fv, fsum := res.FragmentsInVisitedActivities()
	fmt.Printf("package: %s\n", pkg)
	fmt.Printf("activities: %d/%d visited (%.2f%%)\n", va, sa, pct(va, sa))
	fmt.Printf("fragments:  %d/%d visited (%.2f%%)\n", vf, sf, pct(vf, sf))
	fmt.Printf("fragments in visited activities: %d/%d (%.2f%%)\n", fv, fsum, pct(fv, fsum))
	fmt.Printf("test cases: %d   device steps: %d   crashes: %d\n",
		res.TestCases, res.Steps, res.Crashes)

	fmt.Println("\nvisits:")
	for _, n := range res.Model.Nodes() {
		v, ok := res.Visits[n]
		if !ok {
			continue
		}
		fmt.Printf("  %-60s via %-12s (%d ops)\n", n.String(), v.Method, len(v.Route.Ops))
	}

	if len(res.CrashReports) > 0 {
		fmt.Println("\ncrashes found:")
		for _, cr := range res.CrashReports {
			fmt.Printf("  %s (%d ops to reproduce)\n", cr.Reason, len(cr.Route.Ops))
		}
	}

	us := res.Collector.Usages()
	if len(us) > 0 {
		fmt.Println("\nsensitive APIs:")
		for _, u := range us {
			fmt.Printf("  [%s] %-48s %s\n", u.Mark().ASCII(), u.API, strings.Join(u.Classes, ", "))
		}
	}

	var declared []string
	for _, p := range res.Extraction.App.Manifest.Permissions {
		declared = append(declared, p.Name)
	}
	if findings := sensitive.AuditPermissions(declared, us); len(findings) > 0 {
		fmt.Println("\npermission findings (API invoked without declared permission):")
		for _, f := range findings {
			fmt.Printf("  %s by %s — missing %s\n",
				f.API, strings.Join(f.Classes, ", "), strings.Join(f.Missing, ", "))
		}
	}
	if verbose {
		fmt.Println("\ntranscript:")
		for _, line := range res.Transcript {
			fmt.Println("  " + line)
		}
	}
}

func printTargetResult(tr *explorer.TargetResult) {
	fmt.Printf("target API: %s\n", tr.API)
	if len(tr.Plans) == 0 {
		fmt.Println("no static sites found — the app never calls this API")
		return
	}
	fmt.Println("static sites and AFTM paths:")
	for _, p := range tr.Plans {
		fmt.Printf("  %s\n", p.Site)
		if p.Path == nil {
			fmt.Println("    (statically unreachable from the entry)")
			continue
		}
		for _, e := range p.Path {
			fmt.Printf("    %s\n", e)
		}
	}
	if len(tr.SitePlans) > 0 {
		fmt.Println("lifted launcher-to-site routes:")
		for i := range tr.SitePlans {
			sp := &tr.SitePlans[i]
			fmt.Printf("  %s in %s:\n", sp.Target.API, sp.Target.Class)
			for _, r := range sp.Routes {
				fmt.Printf("    route %s: %d ops (path cost %d)\n", r.Script.Name, len(r.Script.Ops), r.Path.Cost)
			}
			if !sp.Liftable() {
				if b, ok := sp.Blocking(); ok {
					fmt.Printf("    UNLIFTABLE: %s\n", b)
				}
			}
		}
		if tr.Seeded > 0 {
			fmt.Printf("seeded %d routes before frontier exploration\n", tr.Seeded)
		}
	}
	if tr.Skipped {
		fmt.Println("SKIPPED: statically unreachable or every path unliftable — dynamic search not attempted")
		return
	}
	if !tr.Triggered {
		fmt.Printf("NOT TRIGGERED after %d test cases\n", tr.Result.TestCases)
		return
	}
	fmt.Printf("TRIGGERED after %d test cases\n", tr.Result.TestCases)
	if u := findUsage(tr); u != nil {
		fmt.Printf("invoked by: %s\n", strings.Join(u.Classes, ", "))
	}
}

func findUsage(tr *explorer.TargetResult) *sensitive.Usage {
	for _, u := range tr.Result.Collector.Usages() {
		if u.API == tr.API {
			return &u
		}
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
