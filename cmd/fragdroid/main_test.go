package main

import (
	"os"
	"path/filepath"
	"testing"

	"fragdroid/internal/corpus"
)

// TestMain points the default "auto" store at a throwaway directory so tests
// never touch the user's real artifact cache (and still exercise the
// persistent path).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fragdroid-test-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("FRAGDROID_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-app", "demo", "-max-cases", "200", "-curve"}); err != nil {
		t.Fatalf("run demo: %v", err)
	}
	if err := run([]string{"-app", "demo", "-md"}); err != nil {
		t.Fatalf("run demo -md: %v", err)
	}
}

func TestRunStrategyFlag(t *testing.T) {
	for _, name := range []string{"biased", "model", "trace"} {
		if err := run([]string{"-app", "demo", "-strategy", name,
			"-max-cases", "150", "-seed", "11", "-curve"}); err != nil {
			t.Fatalf("run -strategy %s: %v", name, err)
		}
	}
	if err := run([]string{"-app", "demo", "-strategy", "bogus"}); err == nil {
		t.Fatal("-strategy bogus: want error")
	}
}

func TestRunMeta(t *testing.T) {
	if err := run([]string{"-app", "demo", "-meta"}); err != nil {
		t.Fatalf("run -meta: %v", err)
	}
}

func TestRunPaperAppWithFlags(t *testing.T) {
	if err := run([]string{"-app", "org.rbc.odb", "-no-reflection", "-no-forced-start"}); err != nil {
		t.Fatalf("run paper app: %v", err)
	}
}

func TestRunFromArchiveAndInputs(t *testing.T) {
	dir := t.TempDir()
	arch, err := corpus.BuildArchive(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	apkPath := filepath.Join(dir, "demo.sapk")
	if err := os.WriteFile(apkPath, arch.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	inputs := `[{"ref":"@id/login_input_account","value":"alice"}]`
	inPath := filepath.Join(dir, "inputs.json")
	if err := os.WriteFile(inPath, []byte(inputs), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", apkPath, "-inputs", inPath}); err != nil {
		t.Fatalf("run from archive: %v", err)
	}
}

func TestRunEmitJavaAndTests(t *testing.T) {
	if err := run([]string{"-app", "demo", "-java"}); err != nil {
		t.Fatalf("run -java: %v", err)
	}
	dir := t.TempDir()
	if err := run([]string{"-app", "demo", "-emit-tests", dir}); err != nil {
		t.Fatalf("run -emit-tests: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "build.xml")); err != nil {
		t.Fatalf("build.xml missing: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "src"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no java programs emitted: %v", err)
	}
	// One .java plus one .json per program; replay a stored one end-to-end.
	var jsonFile string
	javaCount, jsonCount := 0, 0
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".java":
			javaCount++
		case ".json":
			jsonCount++
			jsonFile = filepath.Join(dir, "src", e.Name())
		}
	}
	if javaCount == 0 || javaCount != jsonCount {
		t.Fatalf("java=%d json=%d", javaCount, jsonCount)
	}
	if err := run([]string{"-app", "demo", "-run-test", jsonFile}); err != nil {
		t.Fatalf("run -run-test: %v", err)
	}
	if err := run([]string{"-app", "demo", "-run-test", "/missing.json"}); err == nil {
		t.Error("missing test file: want error")
	}
}

func TestRunTargetMode(t *testing.T) {
	if err := run([]string{"-app", "demo", "-target", "media/Camera.startPreview"}); err != nil {
		t.Fatalf("run -target: %v", err)
	}
	// Unreachable and unknown APIs still complete (reporting not-triggered).
	if err := run([]string{"-app", "demo", "-target", "phone/Configuration.MCC"}); err != nil {
		t.Fatalf("run -target unreachable: %v", err)
	}
	if err := run([]string{"-app", "demo", "-target", "browser/Downloads"}); err != nil {
		t.Fatalf("run -target unused: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-app", "no.such.app"}); err == nil {
		t.Error("unknown app: want error")
	}
	if err := run([]string{"-app", "/does/not/exist.sapk"}); err == nil {
		t.Error("missing archive: want error")
	}
	if err := run([]string{"-app", "demo", "-inputs", "/missing.json"}); err == nil {
		t.Error("missing inputs: want error")
	}
}

// TestParseDevices pins the -devices contract: auto resolves to a sane
// GOMAXPROCS-derived fleet, FRAGDROID_DEVICES overrides auto (but never an
// explicit count), and garbage or non-positive counts fail loudly.
func TestParseDevices(t *testing.T) {
	t.Setenv("FRAGDROID_DEVICES", "")
	n, err := parseDevices("auto")
	if err != nil || n < 1 || n > 8 {
		t.Fatalf("parseDevices(auto) = %d, %v; want 1..8", n, err)
	}
	if n, err := parseDevices("4"); err != nil || n != 4 {
		t.Fatalf("parseDevices(4) = %d, %v", n, err)
	}
	t.Setenv("FRAGDROID_DEVICES", "6")
	if n, err := parseDevices("auto"); err != nil || n != 6 {
		t.Fatalf("env override: parseDevices(auto) = %d, %v; want 6", n, err)
	}
	if n, err := parseDevices("2"); err != nil || n != 2 {
		t.Fatalf("explicit flag beats env: parseDevices(2) = %d, %v", n, err)
	}
	t.Setenv("FRAGDROID_DEVICES", "auto")
	if n, err := parseDevices("auto"); err != nil || n < 1 || n > 8 {
		t.Fatalf("env auto: parseDevices(auto) = %d, %v; want 1..8", n, err)
	}
	for _, bad := range []string{"0", "-2", "many", ""} {
		t.Setenv("FRAGDROID_DEVICES", "")
		if _, err := parseDevices(bad); err == nil {
			t.Errorf("parseDevices(%q): want error", bad)
		}
	}
}

// TestRunDevicesFlag runs the pipeline end to end under an explicit fleet
// size and rejects invalid values at the flag boundary.
func TestRunDevicesFlag(t *testing.T) {
	if err := run([]string{"-app", "demo", "-devices", "2"}); err != nil {
		t.Fatalf("run -devices 2: %v", err)
	}
	if err := run([]string{"-app", "demo", "-devices", "0"}); err == nil {
		t.Error("-devices 0: want error")
	}
	if err := run([]string{"-app", "demo", "-devices", "junk"}); err == nil {
		t.Error("-devices junk: want error")
	}
}
