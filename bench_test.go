// Package fragdroid_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md §3 for the
// experiment index). Each benchmark reports the reproduced headline numbers
// as custom metrics, so `go test -bench . -benchmem` doubles as the
// reproduction record:
//
//	E1  BenchmarkStudyFragmentUsage    §VII-A, "91% of 217 apps use Fragments"
//	E2  BenchmarkTable1Coverage        Table I, 71.94% / 66% average coverage
//	E3  BenchmarkTable2SensitiveAPIs   Table II, 46 APIs / 269 relations / 49%
//	E4  BenchmarkAFTMConstruction      Figure 5, AFTM build from static code
//	E5  BenchmarkChallengeApps         Figures 1–2, tab & hidden-drawer apps
//	A1  BenchmarkAblationReflection    §VI-A Case 1/2 reflection mechanism
//	A2  BenchmarkAblationForcedStart   §VI-C forced empty-Intent second loop
//	A3  BenchmarkBaselineComparison    §VII-C "traditional tools miss ≥9.6%"
//	M1  Benchmark{SmaliParse,DeviceStep,ArchiveRoundTrip,ExploreDemo}
//	P1  BenchmarkStudyParallel         217-app study on 1..NumCPU workers
//	P2  BenchmarkEvaluationCached      repeated evaluation against a warm cache
package fragdroid_test

import (
	"fmt"
	"runtime"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/baseline"
	"fragdroid/internal/callgraph"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/inputgen"
	"fragdroid/internal/lint"
	"fragdroid/internal/report"
	"fragdroid/internal/session"
	"fragdroid/internal/smali"
	"fragdroid/internal/statics"
)

// E1 — the 217-app fragment-usage study.
func BenchmarkStudyFragmentUsage(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := report.RunStudy(1)
		if err != nil {
			b.Fatal(err)
		}
		share = res.FragmentSharePct()
	}
	b.ReportMetric(share, "%apps-with-fragments")
}

// E2 — Table I: full FragDroid over the 15-app corpus.
func BenchmarkTable1Coverage(b *testing.B) {
	var actPct, fragPct, fivaPct float64
	for i := 0; i < b.N; i++ {
		ev, err := report.RunEvaluation(report.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
		actPct, fragPct, fivaPct = ev.BuildTable1().Averages()
	}
	b.ReportMetric(actPct, "%activity-coverage")
	b.ReportMetric(fragPct, "%fragment-coverage")
	b.ReportMetric(fivaPct, "%fiva-coverage")
}

// E3 — Table II: the sensitive-operations matrix and its aggregates.
func BenchmarkTable2SensitiveAPIs(b *testing.B) {
	var apis, relations float64
	var fragShare, fragOnly float64
	for i := 0; i < b.N; i++ {
		ev, err := report.RunEvaluation(report.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
		st := ev.BuildTable2().ComputeStats()
		apis = float64(st.DistinctAPIs)
		relations = float64(st.TotalInvocations)
		fragShare = 100 * st.FragmentShare
		fragOnly = 100 * st.FragmentOnlyShare
	}
	b.ReportMetric(apis, "sensitive-APIs")
	b.ReportMetric(relations, "invocation-relations")
	b.ReportMetric(fragShare, "%fragment-associated")
	b.ReportMetric(fragOnly, "%fragment-only")
}

// E4 — Figure 5: AFTM construction by static extraction.
func BenchmarkAFTMConstruction(b *testing.B) {
	app := demoApp(b)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		ex, err := statics.Extract(app)
		if err != nil {
			b.Fatal(err)
		}
		c := ex.Model.Count()
		edges = c.E1 + c.E2 + c.E3
	}
	b.ReportMetric(float64(edges), "aftm-edges")
}

// E5 — Figures 1 and 2: the tab-switch and hidden-drawer challenge apps.
func BenchmarkChallengeApps(b *testing.B) {
	tabs := &corpus.AppSpec{
		Package: "com.challenge.tabs",
		Activities: []corpus.ActivitySpec{{
			Name: "Main", Launcher: true,
			Wires: []corpus.FragmentWire{
				{Fragment: "Category", Kind: corpus.WireTxnOnCreate},
				{Fragment: "Recent", Kind: corpus.WireTxnButton},
			},
		}},
		Fragments: []corpus.FragmentSpec{{Name: "Category"}, {Name: "Recent"}},
		Switches:  []corpus.FragmentSwitch{{From: "Category", To: "Recent"}},
	}
	drawer := &corpus.AppSpec{
		Package: "com.challenge.drawer",
		Activities: []corpus.ActivitySpec{{
			Name: "Main", Launcher: true,
			Wires: []corpus.FragmentWire{
				{Fragment: "Wallpapers", Kind: corpus.WireTxnOnCreate},
				{Fragment: "Categories", Kind: corpus.WireTxnSlideDrawer},
			},
		}},
		Fragments: []corpus.FragmentSpec{{Name: "Wallpapers"}, {Name: "Categories"}},
	}
	apps := make([]*apk.App, 0, 2)
	for _, s := range []*corpus.AppSpec{tabs, drawer} {
		app, err := corpus.BuildApp(s)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, app)
	}
	b.ResetTimer()
	var visited float64
	for i := 0; i < b.N; i++ {
		visited = 0
		for _, app := range apps {
			res, err := explorer.Explore(app, explorer.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			visited += float64(len(res.VisitedFragments()))
		}
	}
	b.ReportMetric(visited, "challenge-fragments-visited")
}

// corpusApps fetches the 15 Table I apps for the ablation benches through
// the process-wide artifact cache: every ablation shares one set of builds.
func corpusApps(b *testing.B) []*apk.App {
	b.Helper()
	var apps []*apk.App
	for _, row := range corpus.PaperRows() {
		app, err := artifact.Default.App(corpus.PaperSpec(row))
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, app)
	}
	return apps
}

// demoApp fetches the demo app through the process-wide artifact cache.
func demoApp(b *testing.B) *apk.App {
	b.Helper()
	app, err := artifact.Default.App(corpus.DemoSpec())
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// P1 — the 217-app study on a bounded worker pool. Every iteration gets a
// fresh cache, so the measured work is real building and scanning rather
// than memoized lookups; the workers-N/workers-1 time ratio is the headline.
func BenchmarkStudyParallel(b *testing.B) {
	workerSet := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workerSet = append(workerSet, n)
	}
	for _, workers := range workerSet {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				res, err := report.RunStudyWith(report.StudyConfig{
					Seed:     1,
					Parallel: workers,
					Cache:    artifact.NewCache(),
				})
				if err != nil {
					b.Fatal(err)
				}
				share = res.FragmentSharePct()
			}
			b.ReportMetric(share, "%apps-with-fragments")
		})
	}
}

// P2 — repeated evaluation against a warmed artifact cache: each run pays
// for exploration only. The reported rebuild/re-extraction counts must be
// zero; cache-hits/op shows the lookups served from memory.
func BenchmarkEvaluationCached(b *testing.B) {
	cache := artifact.NewCache()
	cfg := report.DefaultEvalConfig()
	cfg.Cache = cache
	if _, err := report.RunEvaluation(cfg); err != nil {
		b.Fatal(err)
	}
	warm := cache.Stats()
	b.ResetTimer()
	var actPct, fragPct float64
	for i := 0; i < b.N; i++ {
		ev, err := report.RunEvaluation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		actPct, fragPct, _ = ev.BuildTable1().Averages()
	}
	b.StopTimer()
	st := cache.Stats()
	b.ReportMetric(float64(st.Hits-warm.Hits)/float64(b.N), "cache-hits/op")
	b.ReportMetric(float64(st.Builds-warm.Builds), "rebuilds")
	b.ReportMetric(float64(st.Extractions-warm.Extractions), "re-extractions")
	b.ReportMetric(actPct, "%activity-coverage")
	b.ReportMetric(fragPct, "%fragment-coverage")
}

func runAblation(b *testing.B, mutate func(*explorer.Config)) (actPct, fragPct float64) {
	apps := corpusApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actPct, fragPct = 0, 0
		for _, app := range apps {
			cfg := explorer.DefaultConfig()
			cfg.MaxTestCases = 4000
			mutate(&cfg)
			res, err := explorer.Explore(app, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ex := res.Extraction
			actPct += 100 * float64(len(res.VisitedActivities())) / float64(len(ex.EffectiveActivities))
			fragPct += 100 * float64(len(res.VisitedFragments())) / float64(len(ex.EffectiveFragments))
		}
		actPct /= float64(len(apps))
		fragPct /= float64(len(apps))
	}
	return actPct, fragPct
}

// A1 — reflection ablation: the fragment-coverage delta is the value of the
// Java-reflection switching mechanism.
func BenchmarkAblationReflection(b *testing.B) {
	for _, tc := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(tc.name, func(b *testing.B) {
			act, frag := runAblation(b, func(c *explorer.Config) { c.UseReflection = tc.on })
			b.ReportMetric(act, "%activity-coverage")
			b.ReportMetric(frag, "%fragment-coverage")
		})
	}
}

// A2 — forced-start ablation: the activity-coverage delta is the value of
// the §VI-C second loop.
func BenchmarkAblationForcedStart(b *testing.B) {
	for _, tc := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(tc.name, func(b *testing.B) {
			act, frag := runAblation(b, func(c *explorer.Config) { c.UseForcedStart = tc.on })
			b.ReportMetric(act, "%activity-coverage")
			b.ReportMetric(frag, "%fragment-coverage")
		})
	}
}

// A3 — the three-system comparison of §VII-C.
func BenchmarkBaselineComparison(b *testing.B) {
	var missedAct, missedMonkey float64
	for i := 0; i < b.N; i++ {
		cmp, err := report.RunComparison(report.DefaultEvalConfig(), 7, 1500)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range cmp.Rows {
			switch r.System {
			case "Activity-level MBT":
				missedAct = r.MissedFragmentAPIPct
			case "Monkey":
				missedMonkey = r.MissedFragmentAPIPct
			}
		}
	}
	b.ReportMetric(missedAct, "%missed-by-activity-mbt")
	b.ReportMetric(missedMonkey, "%missed-by-monkey")
}

// A4 — the §VIII input-generation extension: hint-driven value synthesis vs
// the paper's manual input file vs nothing.
func BenchmarkAblationInputGen(b *testing.B) {
	city, _ := inputgen.ValueFor("city")
	spec := &corpus.AppSpec{
		Package: "com.weather.bench",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true},
			{Name: "Forecast", RequiresExtra: "place"},
			{Name: "Radar", RequiresExtra: "place"},
		},
		Transition: []corpus.Transition{
			{From: "Main", To: "Forecast", Kind: corpus.TransButton,
				Gate: &corpus.InputGate{Expected: city, Hint: "Enter a city"}},
			{From: "Forecast", To: "Radar", Kind: corpus.TransButton,
				Gate: &corpus.InputGate{Expected: city, Hint: "city for radar"}},
		},
	}
	app, err := corpus.BuildApp(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		gen  bool
	}{{"heuristic", true}, {"none", false}} {
		b.Run(tc.name, func(b *testing.B) {
			var visited float64
			for i := 0; i < b.N; i++ {
				cfg := explorer.DefaultConfig()
				if tc.gen {
					cfg.InputGen = &inputgen.Heuristic{}
				}
				res, err := explorer.Explore(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				visited = float64(len(res.VisitedActivities()))
			}
			b.ReportMetric(visited, "activities-visited")
		})
	}
}

// A7 — the BACK-navigation engineering optimization: identical coverage,
// fewer instrumentation runs than the paper's kill-and-restart discipline.
func BenchmarkAblationBackNav(b *testing.B) {
	for _, tc := range []struct {
		name string
		on   bool
	}{{"restart", false}, {"backnav", true}} {
		b.Run(tc.name, func(b *testing.B) {
			apps := corpusApps(b)
			b.ResetTimer()
			var cases float64
			for i := 0; i < b.N; i++ {
				cases = 0
				for _, app := range apps {
					cfg := explorer.DefaultConfig()
					cfg.MaxTestCases = 4000
					cfg.UseBackNavigation = tc.on
					res, err := explorer.Explore(app, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cases += float64(res.TestCases)
				}
			}
			b.ReportMetric(cases, "test-cases-total")
		})
	}
}

// A5 — coverage as a function of test budget, the cost/coverage trade-off
// curve: FragDroid's systematic test cases vs Monkey's raw events on the
// demo app.
func BenchmarkBudgetSweep(b *testing.B) {
	app := demoApp(b)
	for _, budget := range []int{5, 15, 60, 600} {
		budget := budget
		b.Run(fmt.Sprintf("fragdroid-%dcases", budget), func(b *testing.B) {
			var acts, frags float64
			for i := 0; i < b.N; i++ {
				cfg := explorer.DefaultConfig()
				cfg.MaxTestCases = budget
				res, err := explorer.Explore(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				acts = float64(len(res.VisitedActivities()))
				frags = float64(len(res.VisitedFragments()))
			}
			b.ReportMetric(acts, "activities")
			b.ReportMetric(frags, "fragments")
		})
	}
	for _, events := range []int{100, 500, 2000} {
		events := events
		b.Run(fmt.Sprintf("monkey-%devents", events), func(b *testing.B) {
			var acts float64
			for i := 0; i < b.N; i++ {
				res, err := baseline.Monkey(app, baseline.MonkeyConfig{Seed: 7, Events: events})
				if err != nil {
					b.Fatal(err)
				}
				acts = float64(len(res.VisitedActivities))
			}
			b.ReportMetric(acts, "activities")
		})
	}
}

// A6 — the static-vs-dynamic sensitive-site gap (SmartDroid motivation).
func BenchmarkStaticDynamicGap(b *testing.B) {
	var static, confirmed float64
	for i := 0; i < b.N; i++ {
		ev, err := report.RunEvaluation(report.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
		static, confirmed = 0, 0
		for _, r := range ev.StaticDynamicGap() {
			static += float64(r.StaticSites)
			confirmed += float64(r.ConfirmedSites)
		}
	}
	b.ReportMetric(static, "static-sites")
	b.ReportMetric(confirmed, "confirmed-sites")
}

// M1 — substrate microbenchmarks.

func BenchmarkSmaliParse(b *testing.B) {
	app, err := corpus.BuildApp(corpus.PaperSpec(corpus.PaperRows()[9])) // ovuline: largest
	if err != nil {
		b.Fatal(err)
	}
	arch, err := app.Pack()
	if err != nil {
		b.Fatal(err)
	}
	files := make(map[string][]byte)
	for _, p := range arch.WithPrefix(apk.SmaliDir) {
		data, _ := arch.Get(p)
		files[p] = data
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smali.ParseProgram(files); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveRoundTrip(b *testing.B) {
	app := demoApp(b)
	arch, err := app.Pack()
	if err != nil {
		b.Fatal(err)
	}
	raw := arch.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apk.LoadBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceStep(b *testing.B) {
	app := demoApp(b)
	res, err := baseline.Monkey(app, baseline.MonkeyConfig{Seed: 1, Events: 1})
	_ = res
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Monkey(app, baseline.MonkeyConfig{Seed: int64(i), Events: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreScale measures how full exploration scales with app size
// (A3E needed 87–104 minutes per real app; the simulator explores a
// 100-activity app in well under a second).
func BenchmarkExploreScale(b *testing.B) {
	for _, n := range []int{10, 30, 100} {
		n := n
		b.Run(fmt.Sprintf("activities-%d", n), func(b *testing.B) {
			app, err := corpus.BuildApp(corpus.StressSpec(n))
			if err != nil {
				b.Fatal(err)
			}
			cfg := explorer.DefaultConfig()
			cfg.MaxTestCases = 100000
			b.ResetTimer()
			var visited, cases float64
			for i := 0; i < b.N; i++ {
				res, err := explorer.Explore(app, cfg)
				if err != nil {
					b.Fatal(err)
				}
				visited = float64(len(res.VisitedActivities()))
				cases = float64(res.TestCases)
			}
			b.ReportMetric(visited, "activities-visited")
			b.ReportMetric(cases, "test-cases")
		})
	}
}

func BenchmarkExploreDemo(b *testing.B) {
	app := demoApp(b)
	b.ResetTimer()
	var cases int
	for i := 0; i < b.N; i++ {
		res, err := explorer.Explore(app, explorer.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cases = res.TestCases
	}
	b.ReportMetric(float64(cases), "test-cases")
}

// G1 — whole-program call-graph construction plus both reachability
// fixpoints over the 15 Table I apps.
func BenchmarkCallgraphBuild(b *testing.B) {
	apps := corpusApps(b)
	b.ResetTimer()
	var nodes, edges float64
	for i := 0; i < b.N; i++ {
		nodes, edges = 0, 0
		for _, app := range apps {
			g := callgraph.Build(app, nil)
			_ = g.Reach(g.LauncherRoots())
			_ = g.Reach(g.ForcedRoots(g.Activities()))
			n, e := g.Size()
			nodes += float64(n)
			edges += float64(e)
		}
	}
	b.ReportMetric(nodes, "nodes")
	b.ReportMetric(edges, "edges")
}

// G2 — the fraglint overhead question on the 217-app study pipeline, through
// the artifact cache exactly as RunLintStudy uses it. "pipeline" is the cold
// build-and-extract cost of the dataset; "pipeline+lint" adds the full
// analyzer suite. The delta between the two is the linting cost and must
// stay under 10% of the pipeline wall-clock; lint-only isolates the analyzer
// pass against warm extractions.
func BenchmarkLintCorpus(b *testing.B) {
	specs := corpus.StudySpecs(1)
	pipeline := func(b *testing.B, withLint bool) {
		var findings float64
		for i := 0; i < b.N; i++ {
			cache := artifact.NewCache()
			findings = 0
			for _, spec := range specs {
				ex, err := cache.Extraction(spec)
				if err != nil {
					continue // packed apps, as in the study
				}
				if withLint {
					findings += float64(len(lint.Run(ex)))
				}
			}
		}
		if withLint {
			b.ReportMetric(findings, "findings")
		}
	}
	b.Run("pipeline", func(b *testing.B) { pipeline(b, false) })
	b.Run("pipeline+lint", func(b *testing.B) { pipeline(b, true) })
	b.Run("lint-only", func(b *testing.B) {
		var exs []*statics.Extraction
		for _, spec := range specs {
			ex, err := artifact.Default.Extraction(spec)
			if err != nil {
				continue
			}
			exs = append(exs, ex)
		}
		b.ResetTimer()
		var findings float64
		for i := 0; i < b.N; i++ {
			findings = 0
			for _, ex := range exs {
				findings += float64(len(lint.Run(ex)))
			}
		}
		b.ReportMetric(findings, "findings")
	})
}

// S1 — session-runtime tracing overhead: one corpus app explored with a
// no-op observer attached versus full event buffering. The trace layer is
// designed to stay within a few percent of the untraced hot path (typed
// events are only constructed while an observer is attached).
func BenchmarkSessionOverhead(b *testing.B) {
	app, err := corpus.BuildApp(corpus.PaperSpec(corpus.PaperRows()[0]))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := explorer.Explore(app, explorer.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noop-observer", func(b *testing.B) {
		cfg := explorer.DefaultConfig()
		cfg.Observer = session.ObserverFunc(func(session.Event) {})
		for i := 0; i < b.N; i++ {
			if _, err := explorer.Explore(app, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("buffered", func(b *testing.B) {
		var events float64
		for i := 0; i < b.N; i++ {
			cfg := explorer.DefaultConfig()
			buf := &session.TraceBuffer{}
			cfg.Observer = buf
			if _, err := explorer.Explore(app, cfg); err != nil {
				b.Fatal(err)
			}
			events = float64(buf.Len())
		}
		b.ReportMetric(events, "events")
	})
}
