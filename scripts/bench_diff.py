#!/usr/bin/env python3
"""Compare two bench-json records (see `make bench-json`) benchmark by
benchmark.

Usage:
    bench_diff.py OLD.json NEW.json [--min-ratio=KEY:FLOOR]... [--min-rel=KEY:FRAC]...

Both inputs are the JSON `make bench-json` emits: a "benchmarks" array of
objects keyed by benchmark name, plus top-level derived ratios
(warm_speedup, snapshot_speedup, persistent_speedup, ...). For every
benchmark present in both records the script prints ns/op, B/op and
allocs/op side by side with the relative change (negative = NEW is better)
and the old/new speedup; benchmarks present in only one record are listed
so a renamed benchmark cannot silently vanish from the comparison. The
derived ratios of both records are printed last.

Each --min-ratio KEY:FLOOR asserts that NEW's top-level ratio KEY is at
least FLOOR and fails the run otherwise. CI uses this as a parity floor on
short smoke runs, where absolute ns/op is too noisy to gate on but a
derived ratio collapsing (e.g. persistent_speedup dropping well below 1.0
because warm pack decoding regressed) is still a reliable signal.

Each --min-rel KEY:FRAC asserts that NEW's top-level number KEY is at least
FRAC times OLD's — a relative floor for host-dependent throughput numbers
such as apps_per_sec, where no absolute floor is portable but a collapse to
a small fraction of the checked-in record (streaming pipeline gone serial,
release leak thrashing the GC) is still detectable with a generous FRAC.
"""

import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" not in data:
        sys.exit(f"bench_diff: {path}: no \"benchmarks\" array "
                 "(not a bench-json record?)")
    return data


def by_name(data):
    return {b["name"]: b for b in data["benchmarks"]}


def fmt_delta(old, new):
    if not old:
        return "      n/a"
    return f"{(new - old) / old * 100.0:+8.1f}%"


def main(argv):
    floors = []
    rel_floors = []
    paths = []
    for arg in argv:
        if arg.startswith("--min-ratio") or arg.startswith("--min-rel"):
            opt = arg.split("=", 1)[0]
            spec = arg.split("=", 1)[1] if "=" in arg else None
            if spec is None:
                sys.exit(f"bench_diff: {opt} needs KEY:FLOOR "
                         f"(use {opt}=KEY:FLOOR)")
            key, _, floor = spec.partition(":")
            try:
                dest = floors if opt == "--min-ratio" else rel_floors
                dest.append((key, float(floor)))
            except ValueError:
                sys.exit(f"bench_diff: bad {opt} floor {floor!r}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__.strip())

    old_path, new_path = paths
    old, new = load(old_path), load(new_path)
    olds, news = by_name(old), by_name(new)

    print(f"benchmark deltas: {old_path} -> {new_path} "
          f"(negative = better)")
    header = (f"{'benchmark':<26} {'ns/op old':>12} {'ns/op new':>12} "
              f"{'delta':>9} {'speedup':>8} {'B/op':>9} {'allocs':>9}")
    print(header)
    print("-" * len(header))
    for name in [b["name"] for b in old["benchmarks"]]:
        if name not in news:
            print(f"{name:<26} only in {old_path}")
            continue
        o, n = olds[name], news[name]
        ns_o, ns_n = o.get("ns_per_op", 0), n.get("ns_per_op", 0)
        speedup = f"{ns_o / ns_n:8.2f}x" if ns_n else "     n/a"
        print(f"{name:<26} {ns_o:>12} {ns_n:>12} {fmt_delta(ns_o, ns_n)} "
              f"{speedup} "
              f"{fmt_delta(o.get('bytes_per_op', 0), n.get('bytes_per_op', 0))} "
              f"{fmt_delta(o.get('allocs_per_op', 0), n.get('allocs_per_op', 0))}")
    for name in news:
        if name not in olds:
            print(f"{name:<26} only in {new_path}")

    ratios = sorted({k for d in (old, new)
                     for k, v in d.items()
                     if isinstance(v, (int, float)) and k != "host_cpus"})
    if ratios:
        print("\nderived ratios:")
        for k in ratios:
            print(f"  {k:<22} {old.get(k, '-'):>8} -> {new.get(k, '-'):>8}")

    failed = False
    for key, floor in floors:
        got = new.get(key)
        if not isinstance(got, (int, float)):
            print(f"FAIL: {new_path} has no ratio {key!r}")
            failed = True
        elif got < floor:
            print(f"FAIL: {key} = {got} < floor {floor}")
            failed = True
        else:
            print(f"ok: {key} = {got} >= {floor}")
    for key, frac in rel_floors:
        got, ref = new.get(key), old.get(key)
        if not isinstance(got, (int, float)):
            print(f"FAIL: {new_path} has no number {key!r}")
            failed = True
        elif not isinstance(ref, (int, float)):
            print(f"FAIL: {old_path} has no number {key!r} to compare against")
            failed = True
        elif got < frac * ref:
            print(f"FAIL: {key} = {got} < {frac} * old {ref}")
            failed = True
        else:
            print(f"ok: {key} = {got} >= {frac} * old {ref}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
