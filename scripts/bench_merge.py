#!/usr/bin/env python3
"""Merge bench-json records (see `make bench-json`) into one.

Usage:
    bench_merge.py A.json B.json [C.json ...] > MERGED.json

The "benchmarks" arrays are concatenated in argument order (a duplicate
benchmark name across inputs is an error — the merged record must stay
unambiguous for bench_diff.py, which keys on the name). Top-level scalars
(derived ratios, host_cpus, apps_per_sec, ...) are merged last-wins, so a
later record can refresh a number an earlier one also carries.

`make bench-json` uses this to fold the go-test microbenchmark record and
the fragstudy -streamjson corpus-scale throughput record into the single
checked-in BENCH_PR10.json.
"""

import json
import sys


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    merged = {"benchmarks": []}
    seen = set()
    for path in argv:
        with open(path) as f:
            data = json.load(f)
        if "benchmarks" not in data:
            sys.exit(f"bench_merge: {path}: no \"benchmarks\" array "
                     "(not a bench-json record?)")
        for b in data["benchmarks"]:
            if b["name"] in seen:
                sys.exit(f"bench_merge: duplicate benchmark {b['name']!r} "
                         f"in {path}")
            seen.add(b["name"])
            merged["benchmarks"].append(b)
        for k, v in data.items():
            if k != "benchmarks":
                merged[k] = v
    json.dump(merged, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
