// Baselinecompare runs FragDroid, the Activity-level model-based tester, and
// the random Monkey over the 15-app evaluation corpus and prints the
// comparison behind the paper's §VII-C claim that traditional approaches
// must miss at least 9.6% of the API calls invoked in Fragments.
package main

import (
	"fmt"
	"log"

	"fragdroid/internal/report"
)

func main() {
	fmt.Println("running FragDroid, Activity-level MBT, and Monkey over the 15-app corpus…")
	cmp, err := report.RunComparison(report.DefaultEvalConfig(), 7, 1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.RenderComparison(cmp))

	for _, r := range cmp.Rows {
		if r.System == "Activity-level MBT" {
			fmt.Printf("Activity-level testing missed %.1f%% of the invocation relations\n", r.MissedFragmentAPIPct)
			fmt.Println("FragDroid observed — the paper's lower bound for this loss is 9.6%.")
		}
	}
}
