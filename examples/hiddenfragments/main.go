// Hiddenfragments demonstrates Challenge 2 of the paper (Figure 2): an app
// whose fragments hide behind a slide-only navigation drawer. Click-based
// exploration cannot open the drawer, so only FragDroid's Java-reflection
// mechanism reaches the fragments. The example runs the explorer twice —
// with and without reflection — and diffs the outcome.
package main

import (
	"fmt"
	"log"

	"fragdroid/internal/aftm"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
)

func main() {
	// An app in the navigation-drawer style of Figure 2: Wallpapers is shown
	// by default; Categories and Favourites can only be reached through the
	// drawer, which opens by a slide gesture no click can perform.
	spec := &corpus.AppSpec{
		Package: "com.gallery.wallpapers",
		Activities: []corpus.ActivitySpec{
			{
				Name:     "Main",
				Launcher: true,
				Wires: []corpus.FragmentWire{
					{Fragment: "Wallpapers", Kind: corpus.WireTxnOnCreate},
					{Fragment: "Categories", Kind: corpus.WireTxnSlideDrawer},
					{Fragment: "Favourites", Kind: corpus.WireTxnSlideDrawer},
				},
			},
		},
		Fragments: []corpus.FragmentSpec{
			{Name: "Wallpapers"},
			{Name: "Categories", Sensitive: []string{"storage/open"}},
			{Name: "Favourites", Sensitive: []string{"identification/SERIAL"}},
		},
	}
	app, err := corpus.BuildApp(spec)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, useReflection bool) *explorer.Result {
		cfg := explorer.DefaultConfig()
		cfg.UseReflection = useReflection
		res, err := explorer.Explore(app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: visited %d/%d fragments: %v\n",
			label, len(res.VisitedFragments()), len(res.Extraction.EffectiveFragments),
			res.VisitedFragments())
		return res
	}

	fmt.Println("=== hidden slide-menu fragments (paper Figure 2) ===")
	withOut := run("without reflection", false)
	with := run("with reflection   ", true)

	fmt.Println("\nfragments only reachable through the reflection mechanism:")
	seen := make(map[string]bool)
	for _, f := range withOut.VisitedFragments() {
		seen[f] = true
	}
	for _, f := range with.VisitedFragments() {
		if !seen[f] {
			v := with.Visits[aftm.FragmentNode(f)]
			fmt.Printf("  %s (via %s, %d ops)\n", f, v.Method, len(v.Route.Ops))
		}
	}

	fmt.Println("\nsensitive APIs surfaced only by the reflection mechanism:")
	withoutAPIs := make(map[string]bool)
	for _, u := range withOut.Collector.Usages() {
		withoutAPIs[u.API] = true
	}
	for _, u := range with.Collector.Usages() {
		if !withoutAPIs[u.API] {
			fmt.Printf("  %s\n", u.API)
		}
	}
}
