// Sensitiveaudit shows FragDroid as a security-analysis tool (§VII-C): it
// explores one of the evaluated apps and reports every sensitive API it
// observed, attributed to the Activity or Fragment code that invoked it —
// the per-app slice of Table II. An Activity-level tool's view of the same
// app is printed alongside to show what it would miss.
package main

import (
	"fmt"
	"log"
	"strings"

	"fragdroid/internal/baseline"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/sensitive"
)

const target = "com.advancedprocessmanager"

func main() {
	var spec *corpus.AppSpec
	for _, row := range corpus.PaperRows() {
		if row.Package == target {
			spec = corpus.PaperSpec(row)
		}
	}
	app, err := corpus.BuildApp(spec)
	if err != nil {
		log.Fatal(err)
	}

	res, err := explorer.Explore(app, explorer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseline.ExploreActivities(app, baseline.DefaultActivityConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== sensitive-API audit of %s ===\n\n", target)
	fmt.Printf("%-48s %-10s %s\n", "API", "invoked by", "classes")
	fmt.Println(strings.Repeat("-", 100))
	baseAPIs := make(map[string]bool)
	for _, u := range base.Collector.Usages() {
		baseAPIs[u.API] = true
	}
	missed := 0
	for _, u := range res.Collector.Usages() {
		who := describe(u.Mark())
		note := ""
		if !baseAPIs[u.API] {
			note = "   <-- missed by Activity-level tool"
			missed++
		}
		fmt.Printf("%-48s %-10s %s%s\n", u.API, who, strings.Join(u.Classes, ", "), note)
	}
	fmt.Println(strings.Repeat("-", 100))
	fmt.Printf("%d sensitive APIs observed; %d invisible to Activity-level testing\n",
		len(res.Collector.Usages()), missed)
	fmt.Printf("(the paper reports that Activity-based tools miss at least 9.6%% of\n")
	fmt.Printf(" API calls invoked in Fragments across the whole corpus)\n")
}

func describe(m sensitive.Mark) string {
	switch m {
	case sensitive.MarkActivity:
		return "Activity"
	case sensitive.MarkFragment:
		return "Fragment"
	case sensitive.MarkBoth:
		return "Both"
	default:
		return "-"
	}
}
