// Recordreplay demonstrates the record-and-replay testing technique the
// paper's introduction surveys (§I): a "human" session is recorded on one
// device through the ADB bridge, stored as a Robotium script, and replayed
// on a second device. It then contrasts the cost with FragDroid's automated
// exploration, which needs no human input collection at all.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"fragdroid/internal/adb"
	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/explorer"
	"fragdroid/internal/recorder"
	"fragdroid/internal/robotium"
)

func main() {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		log.Fatal(err)
	}

	// --- record a human session --------------------------------------
	rec := recorder.New(device.New(app, device.Options{}), "human_session")
	must(rec.LaunchMain())
	must(rec.Click(corpus.NavButtonRef("Main", "Login")))
	must(rec.EnterText(corpus.InputRef("Login", "Account"), "alice"))
	must(rec.Click(corpus.NavButtonRef("Login", "Account")))
	script := rec.Script()

	data, err := json.MarshalIndent(script, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d events:\n%s\n\n", rec.Len(), data)

	// --- replay on a fresh device -------------------------------------
	if _, err := recorder.Replay(rec, device.New(app, device.Options{})); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay on a second device: OK (same landing activity)")

	// --- the same script runs through the ADB instrumentation path ----
	bridge := adb.New(device.New(app, device.Options{}))
	bridge.InstallTest("com.demo.app.test", script)
	out, err := bridge.Run("am instrument -w com.demo.app.test android.test.InstrumentationTestRunner")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adb instrumentation run: %s\n\n", out)

	// --- contrast with automated exploration --------------------------
	cfg := explorer.DefaultConfig()
	cfg.Inputs = map[string]string{corpus.InputRef("Login", "Account"): "alice"}
	res, err := explorer.Explore(app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R&R covered 3 activities with %d hand-recorded events;\n", rec.Len())
	fmt.Printf("FragDroid covered %d activities and %d fragments with zero recording\n",
		len(res.VisitedActivities()), len(res.VisitedFragments()))
	fmt.Printf("(%d generated test cases; the Robotium render of one human event: %s)\n",
		res.TestCases, robotium.Click(corpus.NavButtonRef("Main", "Login")))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
