// Quickstart: the whole FragDroid pipeline on one small app, in five steps —
// generate a synthetic application package, decompile it, run the static
// information extraction, run the evolutionary UI exploration, and print the
// coverage report.
package main

import (
	"fmt"
	"log"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/statics"
)

func main() {
	// 1. Build the demo app and serialize it like a real package.
	arch, err := corpus.BuildArchive(corpus.DemoSpec())
	if err != nil {
		log.Fatal(err)
	}
	raw := arch.Bytes()
	fmt.Printf("built package: %d bytes, %d entries\n", len(raw), arch.Len())

	// 2. "Decompile" it: parse manifest, layouts and smali back out.
	app, err := apk.LoadBytes(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompiled: %d classes, %d layouts\n", app.Program.Len(), len(app.Layouts))

	// 3. Static Information Extraction: the initial AFTM plus dependencies.
	ex, err := statics.Extract(app)
	if err != nil {
		log.Fatal(err)
	}
	c := ex.Model.Count()
	fmt.Printf("static AFTM: %d activities, %d fragments, edges E1=%d E2=%d E3=%d\n",
		c.Activities, c.Fragments, c.E1, c.E2, c.E3)

	// 4. Evolutionary test case generation, with the analyst input that
	//    unlocks the login gate.
	cfg := explorer.DefaultConfig()
	cfg.Inputs = map[string]string{corpus.InputRef("Login", "Account"): "alice"}
	res, err := explorer.ExploreExtracted(ex, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	fmt.Printf("\nexplored with %d generated test cases (%d device steps)\n",
		res.TestCases, res.Steps)
	fmt.Printf("activities visited: %d/%d\n",
		len(res.VisitedActivities()), len(ex.EffectiveActivities))
	fmt.Printf("fragments visited:  %d/%d\n",
		len(res.VisitedFragments()), len(ex.EffectiveFragments))
	for _, n := range res.Model.Nodes() {
		if v, ok := res.Visits[n]; ok {
			fmt.Printf("  %-50s reached via %s\n", n, v.Method)
		} else {
			fmt.Printf("  %-50s NOT visited\n", n)
		}
	}
	fmt.Println("\nsensitive API invocations:")
	for _, u := range res.Collector.Usages() {
		fmt.Printf("  [%s] %s\n", u.Mark().ASCII(), u.API)
	}
}
