GO ?= go
BENCH_STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)

.PHONY: build test race vet lint bench bench-json bench-diff compare-smoke directed-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint chains the static gates: go vet, staticcheck when installed (CI always
# runs it; local runs without the binary degrade to a notice), and fraglint —
# the repo's own diagnostics engine — over the built-in corpus apps the
# examples/ programs drive, failing on error-severity findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) run ./cmd/fraglint -builtin -severity error

# bench writes the full benchmark log (the reproduction record) to a
# timestamped file so runs can be compared over time.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_$(BENCH_STAMP).txt

# bench-json runs the perf-record benchmarks (cold write-through study vs
# warm disk-served study, the warm Table I evaluation with the snapshot memo
# off, on, and persistent-warm, plus the fleet-speedup curve at 1/2/4
# devices) and renders the result as JSON. Each benchmark line is parsed by
# unit token rather than by column, so custom metrics such as the snapshot
# hit_rate and step_reduction flow through as JSON fields next to
# ns_per_op/bytes_per_op/allocs_per_op. The derived ratios: warm_speedup is
# cold/warm on the study, snapshot_speedup is memo-off/memo-on on the
# evaluation, persistent_speedup is memo-cold/persistent-warm on the
# evaluation, and fleet_speedup_2/_4 are the one-device explorer over the
# two- and four-device fleets (≈1.0 on a single-core host: the fleet trades
# idle cores for warm snapshots; host_cpus records GOMAXPROCS for reading
# the curve).
#
# On top of the microbenchmarks, the target streams a STUDY_N-app generated
# family through `fragstudy -corpus family -stream` (cache off: pure
# generate-build-scan-release throughput, no disk tier) and merges the
# resulting record in, adding the FamilyStudyStream row (ns_per_op is
# per-app wall time) and the top-level apps_per_sec / peak_heap_bytes
# numbers. BENCHTIME trades accuracy for time (CI uses a short count and a
# small STUDY_N as a smoke signal; the checked-in BENCH_PR10.json comes from
# BENCHTIME=10x, STUDY_N=10000).
BENCHTIME ?= 10x
BENCH_JSON ?= BENCH_PR10.json
STUDY_N ?= 10000

# bench-diff compares two bench-json records benchmark by benchmark:
# per-benchmark ns/op, B/op and allocs/op deltas plus both records' derived
# ratios. Defaults compare the current perf record against the previous one;
# CI reuses the script with --min-ratio and --min-rel floors as parity gates
# on smoke runs.
BENCH_DIFF_OLD ?= BENCH_PR9.json
BENCH_DIFF_NEW ?= $(BENCH_JSON)

bench-diff:
	python3 scripts/bench_diff.py $(BENCH_DIFF_OLD) $(BENCH_DIFF_NEW)

# compare-smoke runs the strategy bake-off — every registered strategy over
# the 15-app corpus, COMPARE_SEEDS seeds, COMPARE_BUDGET test cases/events
# per run — and writes the per-strategy coverage-at-budget table (mean and
# variance across seeds) as JSON. The checked-in BENCH_PR7.json comes from
# the defaults; CI runs the same target as a smoke signal on every PR.
COMPARE_BUDGET ?= 300
COMPARE_SEEDS ?= 3
COMPARE_JSON ?= BENCH_PR7.json

compare-smoke:
	$(GO) run ./cmd/fragstudy -compare all -budget $(COMPARE_BUDGET) \
		-seeds $(COMPARE_SEEDS) -seed 7 -cache off -comparejson $(COMPARE_JSON)
	@cat $(COMPARE_JSON)

# directed-smoke runs the PR8 directed-exploration study: the 313-site gap
# classification (dynamically confirmed / statically lifted-but-unreached /
# unliftable, rows summing to the 313-invocation static ceiling and the 269
# confirmed invocations) plus the directed-vs-undirected steps-to-target
# comparison over DIRECTED_SEED..+2, writing the bench summary as JSON. The
# checked-in BENCH_PR8.json comes from the defaults; CI runs the same target
# as a gate on every PR (the totals and the mean step ratio are deterministic).
DIRECTED_SEED ?= 1
DIRECTED_JSON ?= BENCH_PR8.json

directed-smoke:
	$(GO) run ./cmd/fragstudy -directed -seed $(DIRECTED_SEED) -cache off \
		-directedjson $(DIRECTED_JSON)
	@cat $(DIRECTED_JSON)

bench-json:
	$(GO) test -run '^$$' -bench 'StudyColdCache|StudyWarmCache|EvaluationWarmCache|EvaluationSnapshots|EvaluationPersistentWarm|FleetExplore1|FleetExplore2|FleetExplore4' \
		-benchtime $(BENCHTIME) -benchmem ./internal/report/ \
	| awk 'BEGIN { print "{"; print "  \"benchmarks\": [" } \
	/^Benchmark/ { \
		name = $$1; \
		if (match(name, /-[0-9]+$$/)) cpus = substr(name, RSTART + 1, RLENGTH - 1); \
		sub(/^Benchmark/, "", name); sub(/-[0-9]+$$/, "", name); \
		line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $$2); \
		for (i = 3; i < NF; i += 2) { \
			v = $$i; u = $$(i+1); \
			if (u == "ns/op") { key = "ns_per_op"; ns[name] = v } \
			else if (u == "B/op") key = "bytes_per_op"; \
			else if (u == "allocs/op") key = "allocs_per_op"; \
			else { key = u; gsub(/[^A-Za-z0-9_]/, "_", key) } \
			line = line sprintf(", \"%s\": %s", key, v); \
		} \
		if (n++) printf ",\n"; \
		printf "%s}", line } \
	END { \
		printf "\n  ]"; \
		if (cpus == "") cpus = 1; \
		printf ",\n  \"host_cpus\": %s", cpus; \
		if (ns["StudyColdCache"] > 0 && ns["StudyWarmCache"] > 0) \
			printf ",\n  \"warm_speedup\": %.2f", ns["StudyColdCache"] / ns["StudyWarmCache"]; \
		if (ns["EvaluationWarmCache"] > 0 && ns["EvaluationSnapshots"] > 0) \
			printf ",\n  \"snapshot_speedup\": %.2f", ns["EvaluationWarmCache"] / ns["EvaluationSnapshots"]; \
		if (ns["EvaluationSnapshots"] > 0 && ns["EvaluationPersistentWarm"] > 0) \
			printf ",\n  \"persistent_speedup\": %.2f", ns["EvaluationSnapshots"] / ns["EvaluationPersistentWarm"]; \
		if (ns["FleetExplore1"] > 0 && ns["FleetExplore2"] > 0) \
			printf ",\n  \"fleet_speedup_2\": %.2f", ns["FleetExplore1"] / ns["FleetExplore2"]; \
		if (ns["FleetExplore1"] > 0 && ns["FleetExplore4"] > 0) \
			printf ",\n  \"fleet_speedup_4\": %.2f", ns["FleetExplore1"] / ns["FleetExplore4"]; \
		print "\n}" }' > $(BENCH_JSON).micro
	$(GO) run ./cmd/fragstudy -corpus family -n $(STUDY_N) -stream -cache off \
		-streamjson $(BENCH_JSON).stream
	python3 scripts/bench_merge.py $(BENCH_JSON).micro $(BENCH_JSON).stream > $(BENCH_JSON)
	rm -f $(BENCH_JSON).micro $(BENCH_JSON).stream
	@cat $(BENCH_JSON)
