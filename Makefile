GO ?= go
BENCH_STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)

.PHONY: build test race vet lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint chains the static gates: go vet, staticcheck when installed (CI always
# runs it; local runs without the binary degrade to a notice), and fraglint —
# the repo's own diagnostics engine — over the built-in corpus apps the
# examples/ programs drive, failing on error-severity findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) run ./cmd/fraglint -builtin -severity error

# bench writes the full benchmark log (the reproduction record) to a
# timestamped file so runs can be compared over time.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_$(BENCH_STAMP).txt
