GO ?= go
BENCH_STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench writes the full benchmark log (the reproduction record) to a
# timestamped file so runs can be compared over time.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_$(BENCH_STAMP).txt
