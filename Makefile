GO ?= go
BENCH_STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)

.PHONY: build test race vet lint bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint chains the static gates: go vet, staticcheck when installed (CI always
# runs it; local runs without the binary degrade to a notice), and fraglint —
# the repo's own diagnostics engine — over the built-in corpus apps the
# examples/ programs drive, failing on error-severity findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) run ./cmd/fraglint -builtin -severity error

# bench writes the full benchmark log (the reproduction record) to a
# timestamped file so runs can be compared over time.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_$(BENCH_STAMP).txt

# bench-json runs the artifact-store benchmark pair (cold write-through study
# vs warm disk-served study, plus the warm Table I evaluation) and renders
# the result as JSON — ns/op, B/op, allocs/op per benchmark and the derived
# cold/warm speedup. BENCHTIME trades accuracy for time (CI uses a short
# count as a smoke signal; the checked-in BENCH_PR4.json comes from the
# default).
BENCHTIME ?= 10x
BENCH_JSON ?= BENCH_PR4.json

bench-json:
	$(GO) test -run '^$$' -bench 'StudyColdCache|StudyWarmCache|EvaluationWarmCache' \
		-benchtime $(BENCHTIME) -benchmem ./internal/report/ \
	| awk 'BEGIN { print "{"; print "  \"benchmarks\": [" } \
	/^Benchmark/ { \
		name = $$1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$$/, "", name); \
		if (n++) printf ",\n"; \
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			name, $$2, $$3, $$5, $$7; \
		ns[name] = $$3 } \
	END { \
		printf "\n  ]"; \
		if (ns["StudyColdCache"] > 0 && ns["StudyWarmCache"] > 0) \
			printf ",\n  \"warm_speedup\": %.2f", ns["StudyColdCache"] / ns["StudyWarmCache"]; \
		print "\n}" }' > $(BENCH_JSON)
	@cat $(BENCH_JSON)
